//! Use case §7.4: a lightweight compute service (Amazon-Lambda-like).
//!
//! Python jobs arrive every 250 ms — slightly faster than the machine
//! can cope — each served by a fresh Minipython unikernel. Compare how
//! the chaos [XS] and LightVM control planes behave as the backlog
//! builds.
//!
//! Run with: `cargo run --release --example compute_service`

use lightvm::usecases::compute::{self, ComputeConfig};
use lightvm::ToolstackMode;

fn main() {
    for mode in [ToolstackMode::ChaosXs, ToolstackMode::LightVm] {
        let mut cfg = ComputeConfig::paper(mode, 7);
        cfg.requests = 600;
        let r = compute::run(&cfg);
        let peak_service = r
            .service_times
            .iter()
            .map(|t| t.as_secs_f64())
            .fold(0.0, f64::max);
        let peak_conc = r.concurrency.iter().map(|c| c.1).max().unwrap_or(0);
        let create_first = r.create_times[0].as_millis_f64();
        let create_last = r.create_times.last().unwrap().as_millis_f64();
        println!("{}:", mode.label());
        println!("  creations:   {create_first:.2} ms -> {create_last:.2} ms");
        println!("  peak service time: {peak_service:.1} s");
        println!("  peak concurrent VMs: {peak_conc}");
    }
    println!("\nWithout the XenStore, control-plane interrupts stop stealing");
    println!("guest-core cycles, so the backlog stays bounded (Figures 17/18).");
}
