//! The paper's evaluation machines as presets.

use crate::costs::CostModel;

/// The three testbed machines used in the paper's evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MachinePreset {
    /// Intel Xeon E5-1630 v3 @ 3.7 GHz, 4 cores, 128 GiB DDR4 (§4.2, §6).
    XeonE5_1630V3,
    /// 4 × AMD Opteron 6376 @ 2.3 GHz, 64 cores, 128 GiB DDR3 (§6.1).
    AmdOpteron4X6376,
    /// Intel Xeon E5-2690 v4 @ 2.6 GHz, 14 cores, 64 GiB (§7.1, §7.3).
    XeonE5_2690V4,
}

/// A host machine: core count, memory, per-core speed and calibrated costs.
#[derive(Clone, Debug)]
pub struct Machine {
    /// Human-readable description.
    pub name: &'static str,
    /// Physical cores.
    pub cores: usize,
    /// Total RAM in bytes.
    pub mem_bytes: u64,
    /// Per-core speed relative to the Xeon E5-1630 v3 reference.
    pub cpu_speed: f64,
    /// Primitive-cost calibration for this machine.
    pub cost: CostModel,
}

const GIB: u64 = 1 << 30;

impl Machine {
    /// Builds a machine from a preset.
    pub fn preset(which: MachinePreset) -> Machine {
        let base = CostModel::paper_defaults();
        match which {
            MachinePreset::XeonE5_1630V3 => Machine {
                name: "Intel Xeon E5-1630 v3 (4 cores @ 3.7 GHz, 128 GiB DDR4)",
                cores: 4,
                mem_bytes: 128 * GIB,
                cpu_speed: 1.0,
                cost: base,
            },
            MachinePreset::AmdOpteron4X6376 => Machine {
                // Opteron 6376 cores are markedly slower per-core than the
                // Haswell Xeon; Dom0 control-plane work scales with that.
                name: "4x AMD Opteron 6376 (64 cores @ 2.3 GHz, 128 GiB DDR3)",
                cores: 64,
                mem_bytes: 128 * GIB,
                cpu_speed: 0.55,
                cost: base.scaled(1.0 / 0.55),
            },
            MachinePreset::XeonE5_2690V4 => Machine {
                name: "Intel Xeon E5-2690 v4 (14 cores @ 2.6 GHz, 64 GiB)",
                cores: 14,
                mem_bytes: 64 * GIB,
                cpu_speed: 0.8,
                cost: base.scaled(1.0 / 0.8),
            },
        }
    }

    /// A custom machine with reference-speed cores (useful in tests).
    pub fn custom(cores: usize, mem_bytes: u64) -> Machine {
        Machine {
            name: "custom",
            cores,
            mem_bytes,
            cpu_speed: 1.0,
            cost: CostModel::paper_defaults(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_the_paper() {
        let xeon = Machine::preset(MachinePreset::XeonE5_1630V3);
        assert_eq!(xeon.cores, 4);
        assert_eq!(xeon.mem_bytes, 128 * GIB);
        assert_eq!(xeon.cpu_speed, 1.0);

        let amd = Machine::preset(MachinePreset::AmdOpteron4X6376);
        assert_eq!(amd.cores, 64);
        assert!(amd.cpu_speed < 1.0);
        // Slower cores -> higher control-plane costs.
        assert!(amd.cost.hotplug_bash > xeon.cost.hotplug_bash);

        let uc = Machine::preset(MachinePreset::XeonE5_2690V4);
        assert_eq!(uc.cores, 14);
        assert_eq!(uc.mem_bytes, 64 * GIB);
    }
}
