//! Machine-readable performance report for the figure runner.
//!
//! One [`UnitPerf`] per work unit (a single series of a single figure),
//! plus run-level totals. The emitted JSON is the repo's perf-trajectory
//! record: successive optimisation PRs compare `events_per_sec` and
//! wall-clock against the previous run's `results/bench_runner.json`.

use std::io;
use std::path::Path;

use crate::json::Json;

/// Per-work-unit performance measurements.
#[derive(Clone, Debug, PartialEq)]
pub struct UnitPerf {
    /// Figure the unit belongs to, e.g. `"fig09"`.
    pub figure: String,
    /// Unit label within the figure, e.g. `"lightvm"`.
    pub unit: String,
    /// Host wall-clock spent executing the unit, in milliseconds.
    pub wall_ms: f64,
    /// Simulated virtual time covered by the unit, in milliseconds.
    pub virtual_ms: f64,
    /// Simulation events processed (xenstored requests, engine firings,
    /// container operations — whatever the unit's workload counts).
    pub events: u64,
    /// `events / wall seconds`: the single-thread throughput figure the
    /// hot-path optimisations move.
    pub events_per_sec: f64,
    /// Deepest the unit's engine event queue ever got (0 for units that
    /// do not drive a timer engine).
    pub peak_queue_depth: u64,
    /// Events the unit scheduled on its engine (0 likewise).
    pub events_scheduled: u64,
    /// Host heap allocations made while the unit ran (0 when the
    /// counting allocator is not installed — see
    /// [`RunnerReport::alloc_counting`]).
    pub allocs: u64,
    /// World/compute-cache hits the unit benefited from (cached prefix
    /// or memoized result reused; 0 with the cache disabled).
    pub snapshot_hits: u64,
    /// Snapshot forks the unit performed (cache resumes plus its own
    /// throwaway probe forks).
    pub snapshot_forks: u64,
    /// create+boot sequences the world cache saved the unit, plus
    /// store requests cloneboot's closed-form name scans avoided.
    pub boot_events_saved: u64,
    /// Creates that found a cloneboot template during this unit's own
    /// builds (0 with `--no-clone-boot`).
    pub clone_boot_hits: u64,
    /// Creates whose xl name scan was replayed in closed form.
    pub boots_replayed: u64,
}

impl UnitPerf {
    /// Builds a record, deriving `events_per_sec` from the wall-clock.
    pub fn new(
        figure: impl Into<String>,
        unit: impl Into<String>,
        wall_ms: f64,
        virtual_ms: f64,
        events: u64,
    ) -> UnitPerf {
        let events_per_sec = if wall_ms > 0.0 {
            events as f64 / (wall_ms / 1e3)
        } else {
            0.0
        };
        UnitPerf {
            figure: figure.into(),
            unit: unit.into(),
            wall_ms,
            virtual_ms,
            events,
            events_per_sec,
            peak_queue_depth: 0,
            events_scheduled: 0,
            allocs: 0,
            snapshot_hits: 0,
            snapshot_forks: 0,
            boot_events_saved: 0,
            clone_boot_hits: 0,
            boots_replayed: 0,
        }
    }

    /// Attaches the unit's engine event-queue statistics.
    pub fn with_queue_stats(mut self, peak_queue_depth: u64, events_scheduled: u64) -> UnitPerf {
        self.peak_queue_depth = peak_queue_depth;
        self.events_scheduled = events_scheduled;
        self
    }

    /// Attaches the unit's host allocation count.
    pub fn with_allocs(mut self, allocs: u64) -> UnitPerf {
        self.allocs = allocs;
        self
    }

    /// Attaches the unit's world-cache statistics.
    pub fn with_snapshot_stats(
        mut self,
        snapshot_hits: u64,
        snapshot_forks: u64,
        boot_events_saved: u64,
    ) -> UnitPerf {
        self.snapshot_hits = snapshot_hits;
        self.snapshot_forks = snapshot_forks;
        self.boot_events_saved = boot_events_saved;
        self
    }

    /// Attaches the unit's template-boot (cloneboot) statistics.
    pub fn with_clone_stats(mut self, clone_boot_hits: u64, boots_replayed: u64) -> UnitPerf {
        self.clone_boot_hits = clone_boot_hits;
        self.boots_replayed = boots_replayed;
        self
    }

    /// `allocs / events` (0 when the unit counted no events).
    pub fn allocs_per_event(&self) -> f64 {
        if self.events > 0 {
            self.allocs as f64 / self.events as f64
        } else {
            0.0
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("figure".to_string(), Json::Str(self.figure.clone())),
            ("unit".to_string(), Json::Str(self.unit.clone())),
            ("wall_ms".to_string(), Json::Num(round3(self.wall_ms))),
            ("virtual_ms".to_string(), Json::Num(round3(self.virtual_ms))),
            ("events".to_string(), Json::Num(self.events as f64)),
            (
                "events_per_sec".to_string(),
                Json::Num(round3(self.events_per_sec)),
            ),
            (
                "peak_queue_depth".to_string(),
                Json::Num(self.peak_queue_depth as f64),
            ),
            (
                "events_scheduled".to_string(),
                Json::Num(self.events_scheduled as f64),
            ),
            ("allocs".to_string(), Json::Num(self.allocs as f64)),
            (
                "allocs_per_event".to_string(),
                Json::Num(round3(self.allocs_per_event())),
            ),
            (
                "snapshot_hits".to_string(),
                Json::Num(self.snapshot_hits as f64),
            ),
            (
                "snapshot_forks".to_string(),
                Json::Num(self.snapshot_forks as f64),
            ),
            (
                "boot_events_saved".to_string(),
                Json::Num(self.boot_events_saved as f64),
            ),
            (
                "clone_boot_hits".to_string(),
                Json::Num(self.clone_boot_hits as f64),
            ),
            (
                "boots_replayed".to_string(),
                Json::Num(self.boots_replayed as f64),
            ),
        ])
    }
}

/// One scheduled task in the runner's dependency graph: a figure unit,
/// a worldcache chain rung, a probe-walk step or a memoized compute
/// run. The trace records when it ran, on which worker, and what it
/// depended on — enough to reconstruct the schedule and its critical
/// path offline.
#[derive(Clone, Debug, PartialEq)]
pub struct TaskPerf {
    /// Task id (index into the trace; `deps` refer to these).
    pub id: u64,
    /// Task kind: `"unit"`, `"chain"`, `"probe"` or `"compute"` for
    /// scheduled tasks; `"shard"` for the cluster units' per-worker
    /// shard spans, which are informational — their wall is contained
    /// in their owning unit's row, so every aggregate below excludes
    /// them.
    pub kind: String,
    /// Human-readable label, e.g. `"chain xl/daytime@1000"`.
    pub label: String,
    /// Owning figure id for unit tasks, empty for infrastructure tasks.
    pub figure: String,
    /// Worker thread index the task ran on.
    pub thread: u64,
    /// Start/end offsets from run start, in milliseconds.
    pub start_ms: f64,
    pub end_ms: f64,
    /// Simulation work the task itself performed (boots for chain
    /// tasks, probes for probe tasks, own events for units; 0 where
    /// the task only reads caches).
    pub events: u64,
    /// Of those, creates replayed from a cloneboot template (chain
    /// tasks climb shared worlds, so template replays land here rather
    /// than on the units that read the results).
    pub boots_replayed: u64,
    /// Heap allocations made while the task ran on its thread.
    pub allocs: u64,
    /// Ids of the tasks this task waited for.
    pub deps: Vec<u64>,
}

impl TaskPerf {
    /// Wall-clock the task occupied its worker, in milliseconds.
    pub fn wall_ms(&self) -> f64 {
        self.end_ms - self.start_ms
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("id".to_string(), Json::Num(self.id as f64)),
            ("kind".to_string(), Json::Str(self.kind.clone())),
            ("label".to_string(), Json::Str(self.label.clone())),
            ("figure".to_string(), Json::Str(self.figure.clone())),
            ("thread".to_string(), Json::Num(self.thread as f64)),
            ("start_ms".to_string(), Json::Num(round3(self.start_ms))),
            ("end_ms".to_string(), Json::Num(round3(self.end_ms))),
            ("wall_ms".to_string(), Json::Num(round3(self.wall_ms()))),
            ("events".to_string(), Json::Num(self.events as f64)),
            (
                "boots_replayed".to_string(),
                Json::Num(self.boots_replayed as f64),
            ),
            ("allocs".to_string(), Json::Num(self.allocs as f64)),
            (
                "deps".to_string(),
                Json::Arr(self.deps.iter().map(|&d| Json::Num(d as f64)).collect()),
            ),
        ])
    }
}

/// A whole runner invocation: configuration, totals and per-unit rows.
#[derive(Clone, Debug, PartialEq)]
pub struct RunnerReport {
    /// Worker threads actually used (requested jobs clamped to the
    /// number of work units).
    pub jobs: usize,
    /// Logical cores available on the host that produced the report —
    /// context for comparing `speedup` across machines.
    pub host_cores: usize,
    /// Whether the counting global allocator was installed, i.e.
    /// whether `allocs` fields measure anything (a zero with counting
    /// off means "unmeasured", not "allocation-free").
    pub alloc_counting: bool,
    /// Whether the reduced-scale (`LIGHTVM_QUICK`) profile was active.
    pub quick: bool,
    /// End-to-end wall-clock of the whole run, in milliseconds.
    pub wall_ms: f64,
    /// Per-unit measurements, in deterministic (figure, declaration)
    /// order.
    pub units: Vec<UnitPerf>,
    /// Scheduler trace: every task the dependency-aware runner
    /// executed (units plus chain/probe/compute infrastructure), in
    /// task-id order. Empty for reports produced without the DAG
    /// scheduler (e.g. hand-built fixtures).
    pub tasks: Vec<TaskPerf>,
}

impl RunnerReport {
    /// Sum of per-unit wall-clock (what a sequential run would cost,
    /// modulo scheduling noise).
    pub fn total_unit_wall_ms(&self) -> f64 {
        self.units.iter().map(|u| u.wall_ms).sum()
    }

    /// Total events across units.
    pub fn total_events(&self) -> u64 {
        self.units.iter().map(|u| u.events).sum()
    }

    /// Total host allocations across units (0 when counting was off).
    pub fn total_allocs(&self) -> u64 {
        self.units.iter().map(|u| u.allocs).sum()
    }

    /// Aggregate `allocs / events` across every unit.
    pub fn allocs_per_event(&self) -> f64 {
        let events = self.total_events();
        if events > 0 {
            self.total_allocs() as f64 / events as f64
        } else {
            0.0
        }
    }

    /// Total create+boot sequences the world cache saved across units.
    pub fn total_boots_saved(&self) -> u64 {
        self.units.iter().map(|u| u.boot_events_saved).sum()
    }

    /// Total creates replayed from cloneboot templates, across units
    /// and the chain tasks that climb shared worlds on their behalf.
    pub fn total_boots_replayed(&self) -> u64 {
        self.units.iter().map(|u| u.boots_replayed).sum::<u64>()
            + self.tasks.iter().map(|t| t.boots_replayed).sum::<u64>()
    }

    /// Summed wall-clock across every scheduled task — unit tasks plus
    /// the chain/probe/compute infrastructure tasks that build shared
    /// worlds. This is what a fully sequential run would cost. Falls
    /// back to the unit sum when no trace is present.
    pub fn total_task_wall_ms(&self) -> f64 {
        if self.tasks.is_empty() {
            self.total_unit_wall_ms()
        } else {
            self.scheduled().map(TaskPerf::wall_ms).sum()
        }
    }

    /// The scheduled tasks: everything except informational `"shard"`
    /// rows, whose wall is already inside their owning unit's row.
    fn scheduled(&self) -> impl Iterator<Item = &TaskPerf> {
        self.tasks.iter().filter(|t| t.kind != "shard")
    }

    /// Total host allocations across every scheduled task (falls back
    /// to the unit sum without a trace).
    pub fn total_task_allocs(&self) -> u64 {
        if self.tasks.is_empty() {
            self.total_allocs()
        } else {
            self.scheduled().map(|t| t.allocs).sum()
        }
    }

    /// Critical-path length through the measured task graph: the
    /// longest dependency chain by observed wall-clock. No schedule —
    /// at any worker count — can finish faster than this.
    pub fn critical_path_ms(&self) -> f64 {
        let mut cp = vec![0.0f64; self.tasks.len()];
        let mut longest = 0.0f64;
        // Tasks are emitted in topological (id) order: deps < id.
        // Shard rows are informational (wall contained in their unit's
        // row) and never on the path.
        for (i, t) in self.tasks.iter().enumerate() {
            if t.kind == "shard" {
                continue;
            }
            let from_deps = t
                .deps
                .iter()
                .map(|&d| cp[d as usize])
                .fold(0.0f64, f64::max);
            cp[i] = from_deps + t.wall_ms();
            longest = longest.max(cp[i]);
        }
        longest
    }

    /// Deepest observed concurrency: the most tasks whose execution
    /// intervals overlapped at one instant.
    pub fn max_width(&self) -> u64 {
        let mut edges: Vec<(f64, i64)> = Vec::with_capacity(self.tasks.len() * 2);
        for t in self.scheduled() {
            edges.push((t.start_ms, 1));
            edges.push((t.end_ms, -1));
        }
        // Ends sort before starts at the same instant, so abutting
        // tasks on one thread don't count as overlapping.
        edges.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let (mut width, mut max) = (0i64, 0i64);
        for (_, d) in edges {
            width += d;
            max = max.max(width);
        }
        max.max(0) as u64
    }

    /// Aggregate throughput: total events over summed task wall-clock
    /// (the honest sequential-equivalent denominator — chain builds
    /// count whether they ran inside a unit or as their own task).
    pub fn aggregate_events_per_sec(&self) -> f64 {
        let wall_s = self.total_task_wall_ms() / 1e3;
        if wall_s > 0.0 {
            self.total_events() as f64 / wall_s
        } else {
            0.0
        }
    }

    /// Observed parallel speedup: summed task wall-clock over run
    /// wall-clock.
    pub fn speedup(&self) -> f64 {
        if self.wall_ms > 0.0 {
            self.total_task_wall_ms() / self.wall_ms
        } else {
            0.0
        }
    }

    /// Upper bound on achievable speedup at any core count: summed
    /// task wall over the critical path (0 without a trace).
    pub fn speedup_bound(&self) -> f64 {
        let cp = self.critical_path_ms();
        if cp > 0.0 {
            self.total_task_wall_ms() / cp
        } else {
            0.0
        }
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        Json::obj([
            ("jobs".to_string(), Json::Num(self.jobs as f64)),
            ("host_cores".to_string(), Json::Num(self.host_cores as f64)),
            (
                "alloc_counting".to_string(),
                Json::Bool(self.alloc_counting),
            ),
            ("quick".to_string(), Json::Bool(self.quick)),
            ("wall_ms".to_string(), Json::Num(round3(self.wall_ms))),
            (
                "total_unit_wall_ms".to_string(),
                Json::Num(round3(self.total_unit_wall_ms())),
            ),
            (
                "total_events".to_string(),
                Json::Num(self.total_events() as f64),
            ),
            (
                "aggregate_events_per_sec".to_string(),
                Json::Num(round3(self.aggregate_events_per_sec())),
            ),
            ("speedup".to_string(), Json::Num(round3(self.speedup()))),
            (
                "total_allocs".to_string(),
                Json::Num(self.total_allocs() as f64),
            ),
            (
                "allocs_per_event".to_string(),
                Json::Num(round3(self.allocs_per_event())),
            ),
            (
                "total_boot_events_saved".to_string(),
                Json::Num(self.total_boots_saved() as f64),
            ),
            (
                "total_boots_replayed".to_string(),
                Json::Num(self.total_boots_replayed() as f64),
            ),
            (
                "scheduler".to_string(),
                Json::obj([
                    ("tasks".to_string(), Json::Num(self.tasks.len() as f64)),
                    ("max_width".to_string(), Json::Num(self.max_width() as f64)),
                    (
                        "critical_path_ms".to_string(),
                        Json::Num(round3(self.critical_path_ms())),
                    ),
                    (
                        "total_task_wall_ms".to_string(),
                        Json::Num(round3(self.total_task_wall_ms())),
                    ),
                    (
                        "speedup_bound".to_string(),
                        Json::Num(round3(self.speedup_bound())),
                    ),
                ]),
            ),
            (
                "units".to_string(),
                Json::Arr(self.units.iter().map(UnitPerf::to_json).collect()),
            ),
            (
                "tasks".to_string(),
                Json::Arr(self.tasks.iter().map(TaskPerf::to_json).collect()),
            ),
        ])
        .pretty()
    }

    /// Writes the report to `path`, creating parent directories.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }
}

fn round3(v: f64) -> f64 {
    (v * 1e3).round() / 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_perf_derives_throughput() {
        let u = UnitPerf::new("fig09", "lightvm", 500.0, 1234.5, 1_000);
        assert!((u.events_per_sec - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn totals_aggregate_over_units() {
        let r = RunnerReport {
            jobs: 4,
            host_cores: 8,
            alloc_counting: true,
            quick: true,
            wall_ms: 100.0,
            units: vec![
                UnitPerf::new("a", "u1", 100.0, 0.0, 300).with_allocs(30),
                UnitPerf::new("a", "u2", 200.0, 0.0, 600).with_allocs(60),
            ],
            tasks: Vec::new(),
        };
        assert_eq!(r.total_events(), 900);
        assert_eq!(r.total_allocs(), 90);
        assert!((r.allocs_per_event() - 0.1).abs() < 1e-9);
        assert!((r.total_unit_wall_ms() - 300.0).abs() < 1e-9);
        assert!((r.speedup() - 3.0).abs() < 1e-9);
        assert!((r.aggregate_events_per_sec() - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn report_json_mentions_every_unit() {
        let r = RunnerReport {
            jobs: 1,
            host_cores: 4,
            alloc_counting: false,
            quick: false,
            wall_ms: 1.0,
            units: vec![UnitPerf::new("fig04", "debian", 1.0, 2.0, 3)],
            tasks: Vec::new(),
        };
        let js = r.to_json();
        assert!(js.contains("\"fig04\""));
        assert!(js.contains("\"debian\""));
        assert!(js.contains("\"events_per_sec\""));
        assert!(js.contains("\"peak_queue_depth\""));
        assert!(js.contains("\"events_scheduled\""));
        assert!(js.contains("\"host_cores\": 4"));
        assert!(js.contains("\"alloc_counting\": false"));
        assert!(js.contains("\"total_allocs\""));
        assert!(js.contains("\"allocs_per_event\""));
        crate::json::Json::parse(&js).expect("report JSON parses");
    }

    #[test]
    fn allocs_per_event_handles_zero_events() {
        let u = UnitPerf::new("a", "u", 1.0, 0.0, 0).with_allocs(5);
        assert_eq!(u.allocs_per_event(), 0.0);
    }

    fn task(id: u64, start: f64, end: f64, deps: &[u64]) -> TaskPerf {
        TaskPerf {
            id,
            kind: "unit".to_string(),
            label: format!("t{id}"),
            figure: String::new(),
            thread: 0,
            start_ms: start,
            end_ms: end,
            events: 10,
            boots_replayed: 0,
            allocs: 1,
            deps: deps.to_vec(),
        }
    }

    #[test]
    fn scheduler_stats_from_trace() {
        // Diamond: 0 -> {1, 2} -> 3, with 2 the slow middle branch.
        let r = RunnerReport {
            jobs: 2,
            host_cores: 2,
            alloc_counting: true,
            quick: true,
            wall_ms: 40.0,
            units: Vec::new(),
            tasks: vec![
                task(0, 0.0, 10.0, &[]),
                task(1, 10.0, 15.0, &[0]),
                task(2, 10.0, 30.0, &[0]),
                task(3, 30.0, 40.0, &[1, 2]),
            ],
        };
        assert!((r.total_task_wall_ms() - 45.0).abs() < 1e-9);
        assert!((r.critical_path_ms() - 40.0).abs() < 1e-9); // 0 -> 2 -> 3
        assert_eq!(r.max_width(), 2); // tasks 1 and 2 overlap
        assert!((r.speedup_bound() - 45.0 / 40.0).abs() < 1e-9);
        assert_eq!(r.total_task_allocs(), 4);
        let js = r.to_json();
        assert!(js.contains("\"scheduler\""));
        assert!(js.contains("\"critical_path_ms\""));
        assert!(js.contains("\"max_width\": 2"));
        crate::json::Json::parse(&js).expect("report JSON parses");
    }

    #[test]
    fn trace_free_report_falls_back_to_unit_totals() {
        let r = RunnerReport {
            jobs: 1,
            host_cores: 1,
            alloc_counting: false,
            quick: false,
            wall_ms: 100.0,
            units: vec![UnitPerf::new("a", "u", 100.0, 0.0, 1000)],
            tasks: Vec::new(),
        };
        assert!((r.total_task_wall_ms() - 100.0).abs() < 1e-9);
        assert_eq!(r.critical_path_ms(), 0.0);
        assert!((r.aggregate_events_per_sec() - 10_000.0).abs() < 1e-9);
    }
}
