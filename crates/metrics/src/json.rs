//! Minimal JSON tree: emit (compact/pretty) and parse.
//!
//! The workspace builds in offline environments, so figure and report
//! serialisation cannot depend on crates.io. This module implements the
//! small JSON subset the artefacts need: objects with ordered keys,
//! arrays, strings, finite numbers, booleans and null.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order so emission is
/// deterministic and independent of hash state.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (String, Json)>) -> Json {
        Json::Obj(pairs.into_iter().collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Object key/value pairs, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline-free
    /// top level (matching common `to_string_pretty` output).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    /// Compact single-line rendering.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            Json::Arr(_) => out.push_str("[]"),
            Json::Obj(_) => out.push_str("{}"),
            other => other.write_compact(out),
        }
    }

    /// Parses a JSON document.
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::at("trailing data", p.pos));
        }
        Ok(v)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if n.is_finite() {
        if n == n.trunc() && n.abs() < 1e15 {
            // Integral values render without a fractional part, the same
            // for every unit regardless of how the f64 was produced.
            let _ = write!(out, "{}", n as i64);
        } else {
            let _ = write!(out, "{n}");
        }
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse error with a byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl JsonError {
    fn at(message: &str, offset: usize) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset,
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at("unexpected character", self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(JsonError::at("invalid literal", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(JsonError::at("expected a value", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::at("expected ',' or ']'", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(JsonError::at("expected ',' or '}'", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(JsonError::at("unterminated string", self.pos));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(JsonError::at("unterminated escape", self.pos));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(JsonError::at("short \\u escape", self.pos));
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                    .map_err(|_| JsonError::at("bad \\u escape", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError::at("bad \\u escape", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by our artefacts;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(JsonError::at("unknown escape", self.pos)),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    if start + len > self.bytes.len() {
                        return Err(JsonError::at("truncated UTF-8", start));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| JsonError::at("invalid UTF-8", start))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::at("invalid number", start))?;
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError::at("invalid number", start))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for src in ["null", "true", "false", "42", "-1.5", "\"hi\""] {
            let v = Json::parse(src).unwrap();
            assert_eq!(Json::parse(&v.compact()).unwrap(), v, "{src}");
        }
    }

    #[test]
    fn round_trips_nested() {
        let src = r#"{"a": [1, 2.5, {"b": "x\ny"}], "c": {}}"#;
        let v = Json::parse(src).unwrap();
        let again = Json::parse(&v.pretty()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let keys: Vec<&str> = v.as_obj().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["z", "a"]);
    }

    #[test]
    fn integral_floats_render_without_fraction() {
        assert_eq!(Json::Num(10.0).compact(), "10");
        assert_eq!(Json::Num(10.25).compact(), "10.25");
    }

    #[test]
    fn escapes_render_and_parse() {
        let s = "quote\" slash\\ nl\n tab\t";
        let v = Json::Str(s.to_string());
        assert_eq!(Json::parse(&v.compact()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "\"x", "nul", "{\"a\" 1}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn get_and_accessors() {
        let v = Json::parse(r#"{"n": 3, "s": "x", "a": [1]}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(3.0));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("a").and_then(Json::as_arr).map(|a| a.len()), Some(1));
        assert!(v.get("missing").is_none());
    }
}
