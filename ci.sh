#!/usr/bin/env bash
# CI gate: build everything, run the whole test suite (with a
# suite-count guard so lost --workspace coverage fails loudly),
# smoke-run the hot-path microbenches, then regenerate all figures at
# quick scale through the DAG runner. Fails if any expected artefact is
# missing, if disabling the world-snapshot cache changes any artefact
# byte, if any scheduler width changes any artefact byte (quick scale
# at --jobs 2; full scale at --jobs 1/2/8 against the committed
# sequential reference in results/), if the full-scale sequential wall
# regressed >1.5x above the committed baseline (every-replay clone-boot
# verification rides on the incremental world digest — it must stay
# cheap), if runner throughput collapsed
# (>5x below the committed baseline in results/bench_runner.json — a
# coarse band that only trips on real regressions, not
# machine-to-machine noise), or if the density hot path allocates again
# (deterministic allocs/event > 1.0; the allocation-free request path
# landed at 0.432).
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release, workspace) =="
cargo build --release --workspace

echo "== tests (workspace) =="
test_log="$(mktemp)"
cargo test -q --workspace 2>&1 | tee "$test_log"
# Suite-count guard: a botched invocation (or a workspace edit that
# drops crates from the build) silently shrinks coverage. The workspace
# runs 70+ test binaries; fail loudly if most of them did not run.
suites=$(grep -c '^test result: ok' "$test_log" || true)
rm -f "$test_log"
echo "workspace test suites: $suites (guard: >= 70)"
if [ "$suites" -lt 70 ]; then
  echo "ci: only $suites test suite(s) ran — workspace coverage lost (expected >= 70)" >&2
  exit 1
fi

echo "== microbenches (quick smoke: scheduler + xenstore hot paths) =="
LIGHTVM_BENCH_QUICK=1 cargo bench -p bench --bench hotpath
LIGHTVM_BENCH_QUICK=1 cargo bench -p bench --bench simcore_hot

echo "== figures (runall, quick scale, --seq reference) =="
FIG_DIR="${LIGHTVM_FIG_DIR:-target/ci-figures}"
LIGHTVM_QUICK=1 LIGHTVM_FIG_DIR="$FIG_DIR" \
  cargo run --release -p bench --bin runall -- --seq --report "$FIG_DIR/bench_runner.json"

echo "== artefact check =="
missing=0
for id in fig01 fig02 fig04 fig05 fig09 fig10 fig11 fig12a fig12b \
          fig13 fig14 fig15 fig16a fig16b fig16c fig17 fig18 ablations \
          faults churn cluster; do
  for ext in json csv; do
    if [ ! -s "$FIG_DIR/$id.$ext" ]; then
      echo "MISSING: $FIG_DIR/$id.$ext" >&2
      missing=1
    fi
  done
done
if [ ! -s "$FIG_DIR/bench_runner.json" ]; then
  echo "MISSING: $FIG_DIR/bench_runner.json" >&2
  missing=1
fi
if [ "$missing" -ne 0 ]; then
  echo "ci: figure artefacts missing" >&2
  exit 1
fi

echo "== scheduler determinism gate (quick scale, --jobs 2 vs --seq) =="
# The DAG scheduler must be invisible in the artefacts: the same quick
# run on two workers — chains, probe walks and units genuinely
# interleaving — must reproduce the sequential reference byte for byte.
LIGHTVM_QUICK=1 LIGHTVM_FIG_DIR="$FIG_DIR/jobs2" \
  cargo run --release -p bench --bin runall -- --jobs 2 \
  --report "$FIG_DIR/jobs2/bench_runner.json" > /dev/null
for id in fig01 fig02 fig04 fig05 fig09 fig10 fig11 fig12a fig12b \
          fig13 fig14 fig15 fig16a fig16b fig16c fig17 fig18 ablations \
          faults churn cluster; do
  for ext in json csv; do
    if ! cmp -s "$FIG_DIR/$id.$ext" "$FIG_DIR/jobs2/$id.$ext"; then
      echo "ci: $id.$ext differs between --seq and --jobs 2" >&2
      exit 1
    fi
  done
done

echo "== fault determinism gate (same seed => same artefact) =="
# The fault plan is seeded: replaying the faults figure (quick scale,
# standalone binary this time) must reproduce the runner's artefacts
# byte for byte.
LIGHTVM_QUICK=1 LIGHTVM_FIG_DIR="$FIG_DIR/faults-replay" \
  cargo run --release -p bench --bin faults > /dev/null
for ext in json csv; do
  if ! cmp -s "$FIG_DIR/faults.$ext" "$FIG_DIR/faults-replay/faults.$ext"; then
    echo "ci: faults.$ext not reproducible from the same seed" >&2
    exit 1
  fi
done

echo "== churn smoke gate (replay bytes + census plateau) =="
# The churn soak (DESIGN.md §6i) is seeded the same way: re-running the
# standalone binary at quick scale must reproduce the runner's
# artefacts byte for byte. The units already assert zero digest/census
# drift internally (a leak panics the run); the gates below re-check
# the published meta so a weakened assertion can't slip through.
LIGHTVM_QUICK=1 LIGHTVM_FIG_DIR="$FIG_DIR/churn-replay" \
  cargo run --release -p bench --bin churn > /dev/null
for ext in json csv; do
  if ! cmp -s "$FIG_DIR/churn.$ext" "$FIG_DIR/churn-replay/churn.$ext"; then
    echo "ci: churn.$ext not reproducible from the same seed" >&2
    exit 1
  fi
done
# Census-plateau gate: every unit's leak meta — digest drift, census
# drift, last-window arena/interner growth, teardown errors — must be
# exactly "0", and all 6 units must have published each key.
for key in digest_drift census_drift arena_growth_last \
           interner_growth_last teardown_errors; do
  hits=$(grep -c "_$key\": \"0\"" "$FIG_DIR/churn.json" || true)
  if [ "$hits" -ne 6 ]; then
    echo "ci: churn census gate: expected 6 zero $key entries, got $hits" >&2
    grep "_$key\"" "$FIG_DIR/churn.json" >&2 || true
    exit 1
  fi
done
echo "churn: 6 units leak-free (digest, census, arena, interner, teardown)"

echo "== cluster determinism gate (replay bytes + shard widths) =="
# The cluster figure couples thousands of fork-stamped hosts through
# the sharded conservative-lookahead executor (DESIGN.md §6j). The
# standalone binary replays it from the same seed and must reproduce
# the runner's bytes; its --jobs flag widens the shard worker pool,
# which must be invisible in the artefacts too.
for J in 1 2 8; do
  LIGHTVM_QUICK=1 LIGHTVM_FIG_DIR="$FIG_DIR/cluster-j$J" \
    cargo run --release -p bench --bin cluster -- --jobs "$J" > /dev/null
  for ext in json csv; do
    if ! cmp -s "$FIG_DIR/cluster.$ext" "$FIG_DIR/cluster-j$J/cluster.$ext"; then
      echo "ci: cluster.$ext (--jobs $J) not reproducible from the same seed" >&2
      exit 1
    fi
  done
done
# Evacuation hygiene: both evac units must record zero digest and
# census drift across the surviving hosts (the units assert it too;
# this catches a weakened assertion).
for key in evac_digest_drift evac_census_drift; do
  hits=$(grep -c "$key\": \"0\"" "$FIG_DIR/cluster.json" || true)
  if [ "$hits" -ne 2 ]; then
    echo "ci: cluster evac gate: expected 2 zero $key entries, got $hits" >&2
    grep "$key\"" "$FIG_DIR/cluster.json" >&2 || true
    exit 1
  fi
done
echo "cluster: byte-identical at shard widths 1/2/8, evac units leak-free"

echo "== snapshot-cache gate (cached vs --no-snapshot-cache) =="
# Figure units share worlds through bench::worldcache (snapshot/fork
# chains + memoized probe walks). Caching must be invisible in the
# artefacts: re-running with the cache disabled — every unit
# re-simulates its world from scratch — must reproduce the cached
# run's bytes exactly.
LIGHTVM_QUICK=1 LIGHTVM_FIG_DIR="$FIG_DIR/nocache" \
  cargo run --release -p bench --bin runall -- --no-snapshot-cache \
  --report "$FIG_DIR/nocache/bench_runner.json" > /dev/null
for id in fig01 fig02 fig04 fig05 fig09 fig10 fig11 fig12a fig12b \
          fig13 fig14 fig15 fig16a fig16b fig16c fig17 fig18 ablations \
          faults churn cluster; do
  for ext in json csv; do
    if ! cmp -s "$FIG_DIR/$id.$ext" "$FIG_DIR/nocache/$id.$ext"; then
      echo "ci: $id.$ext differs with the snapshot cache disabled" >&2
      exit 1
    fi
  done
done

echo "== clone-boot gate (template boots vs --no-clone-boot) =="
# Template boots (toolstack::cloneboot) replay recorded create deltas
# instead of fully executing repeated creates. Like the snapshot cache,
# they must be invisible in the artefacts: a run with template boots
# disabled — every create fully executed — must reproduce the default
# run's bytes exactly.
LIGHTVM_QUICK=1 LIGHTVM_FIG_DIR="$FIG_DIR/noclone" \
  cargo run --release -p bench --bin runall -- --no-clone-boot \
  --report "$FIG_DIR/noclone/bench_runner.json" > /dev/null
for id in fig01 fig02 fig04 fig05 fig09 fig10 fig11 fig12a fig12b \
          fig13 fig14 fig15 fig16a fig16b fig16c fig17 fig18 ablations \
          faults churn cluster; do
  for ext in json csv; do
    if ! cmp -s "$FIG_DIR/$id.$ext" "$FIG_DIR/noclone/$id.$ext"; then
      echo "ci: $id.$ext differs with template boots disabled" >&2
      exit 1
    fi
  done
done

echo "== fault-free baseline gate (full scale vs committed results/) =="
# With the fault plan inactive the injection layer must consume zero
# RNG draws and charge nothing: every committed figure artefact —
# including the faults sweep itself, whose seed is fixed — stays byte
# identical. Full (non-quick) scale, since that is what results/ holds,
# and at every scheduler width that matters: the committed artefacts
# are the sequential reference, so --jobs 1, 2 and 8 matching them is
# the full-scale byte-identity guarantee.
for J in 1 2 8; do
  FULL_DIR="$FIG_DIR/full-j$J"
  LIGHTVM_FIG_DIR="$FULL_DIR" \
    cargo run --release -p bench --bin runall -- --jobs "$J" \
    --report "$FULL_DIR/bench_runner.json"
  for id in fig01 fig02 fig04 fig05 fig09 fig10 fig11 fig12a fig12b \
            fig13 fig14 fig15 fig16a fig16b fig16c fig17 fig18 ablations \
            faults churn cluster; do
    for ext in json csv; do
      if ! cmp -s "results/$id.$ext" "$FULL_DIR/$id.$ext"; then
        echo "ci: $id.$ext (--jobs $J) differs from committed results/$id.$ext" >&2
        exit 1
      fi
    done
  done
done

echo "== cluster scale gate (committed results/cluster.json) =="
# The density ladder must actually reach datacenter scale: summed over
# the committed artefact's units, >= 1000 hosts stamped and >= 100000
# guests running. (The ladder alone contributes 1111 hosts per mode at
# full scale.)
sum_meta() {
  grep -o "\"[^\"]*_$1\": \"[0-9]*\"" results/cluster.json \
    | grep -o '[0-9]*"$' | tr -d '"' | awk '{s+=$1} END {print s+0}'
}
hosts_total=$(sum_meta hosts)
guests_total=$(sum_meta guests)
echo "cluster scale: $hosts_total hosts, $guests_total guests (gate: >= 1000 / >= 100000)"
if [ "$hosts_total" -lt 1000 ] || [ "$guests_total" -lt 100000 ]; then
  echo "ci: cluster figure below datacenter scale ($hosts_total hosts, $guests_total guests)" >&2
  exit 1
fi

echo "== wall gate (full scale, --jobs 1, verification every replay) =="
# Incremental world digests (DESIGN.md §6h) pay for every-replay clone
# boot verification; the whole point is that the full run got cheaper,
# not dearer. Gate the fresh full-scale sequential wall against the
# committed baseline with a 1.5x noise band — wide enough for
# machine-to-machine variance, tight enough to catch the digest path
# going accidentally O(world) again.
extract_wall() {
  grep -o '"wall_ms": *[0-9.]*' "$1" | head -1 | grep -o '[0-9.]*$'
}
if [ -s results/bench_runner.json ]; then
  wall_base=$(extract_wall results/bench_runner.json)
  wall_fresh=$(extract_wall "$FIG_DIR/full-j1/bench_runner.json")
  echo "full-scale wall (--jobs 1): $wall_fresh ms fresh vs $wall_base ms committed (gate: <= 1.5x)"
  if ! awk -v f="$wall_fresh" -v b="$wall_base" 'BEGIN { exit !(f <= b * 1.5) }'; then
    echo "ci: full-scale sequential wall regressed >1.5x above committed baseline" >&2
    exit 1
  fi
else
  echo "ci: no committed baseline (results/bench_runner.json), skipping gate"
fi

echo "== throughput gate (aggregate_events_per_sec) =="
# Covers the cluster units too: their simulated events (hundreds of
# thousands of host-world events per run) land in the same report, so
# an events/s collapse in the sharded executor trips this gate.
extract_rate() {
  grep -o '"aggregate_events_per_sec": *[0-9.]*' "$1" | head -1 | grep -o '[0-9.]*$'
}
if [ -s results/bench_runner.json ]; then
  baseline=$(extract_rate results/bench_runner.json)
  fresh=$(extract_rate "$FIG_DIR/bench_runner.json")
  echo "baseline: $baseline events/s (committed), fresh: $fresh events/s (quick run)"
  if ! awk -v f="$fresh" -v b="$baseline" 'BEGIN { exit !(f * 5.0 >= b) }'; then
    echo "ci: runner throughput regressed >5x below committed baseline" >&2
    exit 1
  fi
else
  echo "ci: no committed baseline (results/bench_runner.json), skipping gate"
fi

echo "== allocation gate (density allocs/event) =="
# The `allocs` binary replays the density hot path (200 guest creates
# under xl, ~15 ms) with the counting global allocator installed. The
# simulation is deterministic, so the count is exact and the band can
# be tight and absolute: the allocation-free request-path work landed
# at 0.432 allocs/event (results/bench_micro_pr3.md; 5.505 before it).
# Crossing 1.0 means allocations came back on the request hot path.
# Capture before grepping: grep -m1 on the pipe can exit while the
# binary is still flushing, and the SIGPIPE aborts the run.
allocs_out=$(cargo run --release -p bench --bin allocs -- 200)
fresh_allocs=$(printf '%s\n' "$allocs_out" \
  | grep -m1 -o 'allocs_per_event: *[0-9.]*' | grep -o '[0-9.]*$')
echo "density hot path: $fresh_allocs allocs/event (gate: <= 1.0)"
if ! awk -v f="$fresh_allocs" 'BEGIN { exit !(f <= 1.0) }'; then
  echo "ci: density hot path regressed above 1.0 allocs/event" >&2
  exit 1
fi
echo "ci: OK"
