//! Figure 1: the unrelenting growth of the Linux syscall API.

use container::syscall_history;
use metrics::{Figure, Series};

fn main() {
    let mut fig = Figure::new(
        "fig01",
        "Linux syscall count by release year (x86_32)",
        "year",
        "no. of syscalls",
    );
    fig.push_series(Series::from_points(
        "syscalls",
        syscall_history()
            .iter()
            .map(|r| (r.year as f64, r.syscalls as f64)),
    ));
    fig.set_meta("source", "curated x86_32 syscall-table history");
    let xs: Vec<f64> = syscall_history().iter().map(|r| r.year as f64).collect();
    bench::finish(&fig, &xs);
}
