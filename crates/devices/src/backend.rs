//! Back-end drivers (netback / blkback / console back-end).
//!
//! A back-end allocates the communication resources for a device — an
//! unbound event channel for the front-end to bind and a grant reference
//! for the device control page — and then serves the front-end's
//! connection. Both the XenStore path (Figure 7a) and the noxs path
//! (Figure 7b) go through these same operations; only the way the
//! `(backend-id, event channel, grant reference)` triple reaches the guest
//! differs.

use std::collections::HashMap;

use hypervisor::{DeviceKind, DomId, EvtchnPort, GrantRef, HvError, Hypervisor};
use simcore::{Category, CostModel, Meter};

use crate::xenbus::XenbusState;

/// Device-management errors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DevError {
    /// (domain, devid) already has a device of this class.
    Exists,
    /// No such device.
    NotFound,
    /// Operation illegal in the current xenbus state.
    BadState,
    /// The backend refused to allocate the device (resource exhaustion
    /// on the backend side; injected by the fault plan).
    Refused,
    /// A watchdog timeout expired waiting for the other end (hotplug
    /// daemon unresponsive, xenbus handshake stalled).
    Timeout,
    /// Underlying hypercall failed.
    Hv(HvError),
}

impl From<HvError> for DevError {
    fn from(e: HvError) -> Self {
        DevError::Hv(e)
    }
}

impl From<crate::switch::SwitchError> for DevError {
    fn from(e: crate::switch::SwitchError) -> Self {
        match e {
            crate::switch::SwitchError::PortExists => DevError::Exists,
            crate::switch::SwitchError::NoSuchPort => DevError::NotFound,
        }
    }
}

impl std::fmt::Display for DevError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DevError::Exists => write!(f, "device already exists"),
            DevError::NotFound => write!(f, "no such device"),
            DevError::BadState => write!(f, "illegal xenbus state transition"),
            DevError::Refused => write!(f, "backend refused device allocation"),
            DevError::Timeout => write!(f, "timed out waiting for peer"),
            DevError::Hv(e) => write!(f, "hypervisor: {e}"),
        }
    }
}

impl std::error::Error for DevError {}

/// Back-end state for one device.
#[derive(Clone, Debug)]
pub struct BackendDevice {
    /// Front-end domain.
    pub dom: DomId,
    /// Per-class device index.
    pub devid: u32,
    /// Negotiation state.
    pub state: XenbusState,
    /// Unbound port allocated for the front-end.
    pub evtchn: EvtchnPort,
    /// Grant reference of the device control page.
    pub grant: GrantRef,
    /// Front-end's local port once bound.
    pub frontend_port: Option<EvtchnPort>,
    /// MAC address (for vifs).
    pub mac: String,
}

/// A back-end driver instance, normally in Dom0 but optionally in a
/// dedicated *driver domain* (paper §4.1 footnote: "this functionality
/// can be put in a separate VM called a driver domain").
#[derive(Clone, Debug)]
pub struct Backend {
    kind: DeviceKind,
    backend_dom: DomId,
    devices: HashMap<(u32, u32), BackendDevice>,
    next_ctrl_frame: u64,
}

impl Backend {
    /// Creates a back-end for one device class in Dom0.
    pub fn new(kind: DeviceKind) -> Backend {
        Backend::new_in_domain(kind, DomId::DOM0)
    }

    /// Creates a back-end running in a driver domain.
    pub fn new_in_domain(kind: DeviceKind, backend_dom: DomId) -> Backend {
        Backend {
            kind,
            backend_dom,
            devices: HashMap::new(),
            next_ctrl_frame: 0x10_0000,
        }
    }

    /// The device class this back-end serves.
    pub fn kind(&self) -> DeviceKind {
        self.kind
    }

    /// The domain the back-end runs in.
    pub fn backend_dom(&self) -> DomId {
        self.backend_dom
    }

    /// Deterministic MAC derived from (dom, devid), Xen OUI.
    pub fn mac_for(dom: DomId, devid: u32) -> String {
        format!(
            "00:16:3e:{:02x}:{:02x}:{:02x}",
            (dom.0 >> 8) as u8,
            dom.0 as u8,
            devid as u8
        )
    }

    /// Allocates back-end resources for a new device: internal
    /// structures, an unbound event channel and the control-page grant.
    /// The device enters `InitWait`, waiting for the front-end.
    pub fn alloc_device(
        &mut self,
        hv: &mut Hypervisor,
        cost: &CostModel,
        meter: &mut Meter,
        dom: DomId,
        devid: u32,
    ) -> Result<(EvtchnPort, GrantRef), DevError> {
        if self.devices.contains_key(&(dom.0, devid)) {
            return Err(DevError::Exists);
        }
        meter.charge(Category::Devices, cost.backend_setup);
        let evtchn = hv.evtchn_alloc_unbound(cost, meter, self.backend_dom, dom);
        let frame = self.next_ctrl_frame;
        self.next_ctrl_frame += 1;
        let grant = hv.grant_access(cost, meter, self.backend_dom, dom, frame, false);
        self.devices.insert(
            (dom.0, devid),
            BackendDevice {
                dom,
                devid,
                state: XenbusState::InitWait,
                evtchn,
                grant,
                frontend_port: None,
                mac: Self::mac_for(dom, devid),
            },
        );
        Ok((evtchn, grant))
    }

    /// Front-end connects: binds the event channel, maps the control
    /// page, and the two ends exchange device parameters (state, MAC).
    /// Moves the device to `Connected` and returns the front-end's local
    /// port.
    pub fn frontend_connect(
        &mut self,
        hv: &mut Hypervisor,
        cost: &CostModel,
        meter: &mut Meter,
        dom: DomId,
        devid: u32,
    ) -> Result<EvtchnPort, DevError> {
        let dev = self
            .devices
            .get_mut(&(dom.0, devid))
            .ok_or(DevError::NotFound)?;
        if dev.state != XenbusState::InitWait {
            return Err(DevError::BadState);
        }
        let backend_dom = self.backend_dom;
        let fport = hv.evtchn_bind(cost, meter, dom, backend_dom, dev.evtchn)?;
        hv.grant_map(cost, meter, dom, backend_dom, dev.grant)?;
        // Parameter exchange over the control page (replaces the XenStore
        // records under noxs; mirrors them under the XenStore path).
        meter.charge(Category::Devices, cost.ctrl_page_exchange);
        debug_assert!(dev.state.can_transition_to(XenbusState::Initialised));
        dev.state = XenbusState::Initialised;
        debug_assert!(dev.state.can_transition_to(XenbusState::Connected));
        dev.state = XenbusState::Connected;
        dev.frontend_port = Some(fport);
        Ok(fport)
    }

    /// Closes a device (tear-down from either side).
    pub fn close_device(
        &mut self,
        hv: &mut Hypervisor,
        cost: &CostModel,
        meter: &mut Meter,
        dom: DomId,
        devid: u32,
    ) -> Result<(), DevError> {
        let dev = self
            .devices
            .get_mut(&(dom.0, devid))
            .ok_or(DevError::NotFound)?;
        meter.charge(Category::Devices, cost.backend_setup.scale(0.5));
        let backend_dom = self.backend_dom;
        if let Some(fport) = dev.frontend_port.take() {
            let _ = hv.evtchn.close(dom, fport);
            let _ = hv.gnttab.unmap(dom, backend_dom, dev.grant);
        }
        let _ = hv.evtchn.close(backend_dom, dev.evtchn);
        let _ = hv.gnttab.end_access(backend_dom, dev.grant);
        dev.state = XenbusState::Closed;
        self.devices.remove(&(dom.0, devid));
        Ok(())
    }

    /// Looks up a device.
    pub fn device(&self, dom: DomId, devid: u32) -> Option<&BackendDevice> {
        self.devices.get(&(dom.0, devid))
    }

    /// Devices currently managed.
    pub fn count(&self) -> usize {
        self.devices.len()
    }

    /// Forgets all devices of a dead domain (resources are reaped by
    /// [`Hypervisor::destroy`]).
    pub fn drop_domain(&mut self, dom: DomId) -> usize {
        let before = self.devices.len();
        self.devices.retain(|(d, _), _| *d != dom.0);
        before - self.devices.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypervisor::DomainConfig;

    const GIB: u64 = 1 << 30;

    fn setup() -> (Hypervisor, Backend, CostModel, Meter, DomId) {
        let mut hv = Hypervisor::new(8 * GIB, 0, vec![1, 2, 3]);
        let cost = CostModel::paper_defaults();
        let mut m = Meter::new();
        let dom = hv.create_domain(&cost, &mut m, &DomainConfig::default()).unwrap();
        (hv, Backend::new(DeviceKind::Net), cost, m, dom)
    }

    #[test]
    fn alloc_connect_close_lifecycle() {
        let (mut hv, mut be, cost, mut m, dom) = setup();
        let (port, grant) = be.alloc_device(&mut hv, &cost, &mut m, dom, 0).unwrap();
        assert_eq!(be.device(dom, 0).unwrap().state, XenbusState::InitWait);
        let fport = be.frontend_connect(&mut hv, &cost, &mut m, dom, 0).unwrap();
        let dev = be.device(dom, 0).unwrap();
        assert_eq!(dev.state, XenbusState::Connected);
        assert_eq!(dev.frontend_port, Some(fport));
        assert_eq!(dev.evtchn, port);
        assert_eq!(dev.grant, grant);
        // Notifications flow both ways.
        hv.evtchn_send(&cost, &mut m, DomId::DOM0, port).unwrap();
        assert!(hv.evtchn.poll(dom, fport).unwrap());
        be.close_device(&mut hv, &cost, &mut m, dom, 0).unwrap();
        assert!(be.device(dom, 0).is_none());
        assert!(hv.gnttab.is_empty());
    }

    #[test]
    fn duplicate_device_rejected() {
        let (mut hv, mut be, cost, mut m, dom) = setup();
        be.alloc_device(&mut hv, &cost, &mut m, dom, 0).unwrap();
        assert_eq!(
            be.alloc_device(&mut hv, &cost, &mut m, dom, 0).unwrap_err(),
            DevError::Exists
        );
        // Different devid is fine.
        be.alloc_device(&mut hv, &cost, &mut m, dom, 1).unwrap();
        assert_eq!(be.count(), 2);
    }

    #[test]
    fn connect_before_alloc_fails() {
        let (mut hv, mut be, cost, mut m, dom) = setup();
        assert_eq!(
            be.frontend_connect(&mut hv, &cost, &mut m, dom, 0).unwrap_err(),
            DevError::NotFound
        );
    }

    #[test]
    fn double_connect_fails() {
        let (mut hv, mut be, cost, mut m, dom) = setup();
        be.alloc_device(&mut hv, &cost, &mut m, dom, 0).unwrap();
        be.frontend_connect(&mut hv, &cost, &mut m, dom, 0).unwrap();
        assert_eq!(
            be.frontend_connect(&mut hv, &cost, &mut m, dom, 0).unwrap_err(),
            DevError::BadState
        );
    }

    #[test]
    fn mac_is_deterministic_and_unique_per_device() {
        let a = Backend::mac_for(DomId(1), 0);
        let b = Backend::mac_for(DomId(1), 1);
        let c = Backend::mac_for(DomId(2), 0);
        assert_eq!(a, Backend::mac_for(DomId(1), 0));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert!(a.starts_with("00:16:3e:"));
    }

    #[test]
    fn drop_domain_forgets_devices() {
        let (mut hv, mut be, cost, mut m, dom) = setup();
        be.alloc_device(&mut hv, &cost, &mut m, dom, 0).unwrap();
        be.alloc_device(&mut hv, &cost, &mut m, dom, 1).unwrap();
        assert_eq!(be.drop_domain(dom), 2);
        assert_eq!(be.count(), 0);
    }
}
