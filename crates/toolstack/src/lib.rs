//! Virtualization toolstacks: stock `xl`/libxl and the paper's
//! `chaos`/libchaos, with the split-toolstack daemon (paper §5).
//!
//! The [`ControlPlane`] owns everything living in Dom0 — xenstored, the
//! hypervisor interface, back-end drivers, the software switch, the
//! sysctl back-end, the CPU contention model and the chaos daemon's
//! shell pool — and exposes VM lifecycle operations under any of the
//! five toolstack configurations the paper evaluates (Figure 9):
//! `xl`, `chaos [XS]`, `chaos [XS+split]`, `chaos [NoXS]` and full
//! `LightVM` (noxs + split).
//!
//! Every `create` returns a [`CreateReport`] carrying the per-category
//! cost breakdown, reproducing the instrumentation behind Figure 5.

pub mod census;
pub mod cloneboot;
pub mod config;
pub mod fleet;
pub mod lifecycle;
pub mod plane;
pub mod snapshot;
pub mod split;

pub use census::WorldCensus;
pub use fleet::HostTemplate;
pub use config::{ConfigError, VmConfig};
pub use lifecycle::SavedVm;
pub use plane::{ControlPlane, CreateReport, PlaneError, TeardownErrors, ToolstackMode, Vm};
pub use split::{ChaosDaemon, VmShell};

#[cfg(test)]
mod tests;
