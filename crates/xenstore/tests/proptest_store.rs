//! Property tests of the store tree and transactions: random operation
//! sequences preserve structural invariants, and transactions are
//! equivalent to direct application when nothing interferes.
//!
//! Randomness comes from the workspace's own seeded `SimRng` (the build
//! environment is offline, so no proptest), with a fixed seed per test:
//! failures reproduce exactly.

use std::sync::Arc;

use simcore::SimRng;
use xenstore::txn::{Txn, TxnId};
use xenstore::watch::WatchTable;
use xenstore::{Store, XsError, XsPath};

/// A small path universe so operations collide often.
fn random_path(rng: &mut SimRng) -> XsPath {
    let a = rng.index(3);
    let b = rng.index(3);
    let s = match rng.index(3) {
        0 => format!("/d{a}"),
        1 => format!("/d{a}/e{b}"),
        _ => format!("/d{a}/e{b}/f"),
    };
    XsPath::parse(&s).unwrap()
}

#[derive(Clone, Debug)]
enum Op {
    Write(XsPath, Vec<u8>),
    Mkdir(XsPath),
    Rm(XsPath),
    Read(XsPath),
    Dir(XsPath),
}

fn random_op(rng: &mut SimRng) -> Op {
    let p = random_path(rng);
    match rng.index(5) {
        0 => {
            let len = rng.index(8);
            let v = (0..len).map(|_| rng.index(256) as u8).collect();
            Op::Write(p, v)
        }
        1 => Op::Mkdir(p),
        2 => Op::Rm(p),
        3 => Op::Read(p),
        _ => Op::Dir(p),
    }
}

/// Recount nodes by walking directories.
fn recount(store: &Store, path: &XsPath) -> usize {
    let mut n = 1;
    if let Ok(children) = store.directory(0, path) {
        for c in children {
            n += recount(store, &path.child(&c).unwrap());
        }
    }
    n
}

fn collect(store: &Store, path: &XsPath) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    if let Ok(v) = store.read(0, path) {
        out.push((path.as_str().to_string(), v.to_vec()));
    }
    if let Ok(children) = store.directory(0, path) {
        for c in children {
            out.extend(collect(store, &path.child(&c).unwrap()));
        }
    }
    out
}

/// node_count always equals an actual recount of the tree.
#[test]
fn node_count_is_consistent() {
    let mut rng = SimRng::new(0x5701);
    for _case in 0..128 {
        let mut store = Store::new();
        let n_ops = rng.index(60);
        for _ in 0..n_ops {
            match random_op(&mut rng) {
                Op::Write(p, v) => {
                    let _ = store.write(0, &p, &v);
                }
                Op::Mkdir(p) => {
                    let _ = store.mkdir(0, &p);
                }
                Op::Rm(p) => {
                    let _ = store.rm(0, &p);
                }
                Op::Read(p) => {
                    let _ = store.read(0, &p);
                }
                Op::Dir(p) => {
                    let _ = store.directory(0, &p);
                }
            }
            assert_eq!(store.node_count(), recount(&store, &XsPath::root()));
        }
    }
}

/// A write is always readable back (until removed).
#[test]
fn write_read_round_trip() {
    let mut rng = SimRng::new(0x5702);
    for _case in 0..256 {
        let p = random_path(&mut rng);
        let len = rng.index(16);
        let v: Vec<u8> = (0..len).map(|_| rng.index(256) as u8).collect();
        let mut store = Store::new();
        store.write(0, &p, &v).unwrap();
        assert_eq!(store.read(0, &p).unwrap(), &v[..]);
    }
}

/// An uncontended transaction commits and equals direct application.
#[test]
fn txn_equals_direct() {
    let mut rng = SimRng::new(0x5703);
    for _case in 0..128 {
        let mut direct = Store::new();
        let mut base = Store::new();
        // Common prefix so rm has something to remove.
        for s in ["/d0/e0", "/d1/e1/f"] {
            let p = XsPath::parse(s).unwrap();
            direct.write(0, &p, b"seed").unwrap();
            base.write(0, &p, b"seed").unwrap();
        }
        let mut txn = Txn::start(TxnId(1), 0, &base);
        let n_ops = rng.index(30);
        for _ in 0..n_ops {
            match random_op(&mut rng) {
                Op::Write(p, v) => {
                    let a = direct.write(0, &p, &v);
                    let b = txn.write(&base, &p, &v);
                    assert_eq!(a.is_ok(), b.is_ok());
                }
                Op::Mkdir(p) => {
                    let a = direct.mkdir(0, &p);
                    let b = txn.mkdir(&base, &p);
                    assert_eq!(a.is_ok(), b.is_ok());
                }
                Op::Rm(p) => {
                    let a = direct.rm(0, &p);
                    let b = txn.rm(&base, &p);
                    assert_eq!(a.is_ok(), b.is_ok());
                }
                Op::Read(p) => {
                    let a = direct.read(0, &p).map(|v| v.to_vec());
                    let b = txn.read(&base, &p);
                    assert_eq!(a.is_ok(), b.is_ok());
                    if let (Ok(av), Ok(bv)) = (a, b) {
                        assert_eq!(&av[..], &*bv);
                    }
                }
                Op::Dir(p) => {
                    let a = direct.directory(0, &p);
                    let b = txn.directory(&base, &p);
                    assert_eq!(a.is_ok(), b.is_ok());
                    if let (Ok(mut av), Ok(bv)) = (a, b) {
                        av.sort();
                        assert_eq!(av, bv);
                    }
                }
            }
        }
        let mut fired = Vec::new();
        txn.commit(&mut base, &mut fired).unwrap();
        // The committed store equals the directly mutated one.
        assert_eq!(base.node_count(), direct.node_count());
        assert_eq!(
            collect(&base, &XsPath::root()),
            collect(&direct, &XsPath::root())
        );
    }
}

/// Conflict detection: any external write to a touched node aborts.
#[test]
fn external_write_conflicts() {
    let mut rng = SimRng::new(0x5704);
    for _case in 0..128 {
        let p = random_path(&mut rng);
        let q = random_path(&mut rng);
        let mut store = Store::new();
        store.write(0, &p, b"0").unwrap();
        store.write(0, &q, b"0").unwrap();
        let mut txn = Txn::start(TxnId(1), 0, &store);
        let _ = txn.read(&store, &p);
        store.write(0, &p, b"external").unwrap();
        let _ = txn.write(&store, &q, b"mine");
        let mut fired = Vec::new();
        assert_eq!(txn.commit(&mut store, &mut fired).unwrap_err(), XsError::Again);
    }
}

/// Zero-copy aliasing: a payload snapshot taken via `read_rc` never
/// changes, no matter what is written to (or removed from) the store
/// afterwards — including same-length overwrites, which may only reuse
/// the buffer when no snapshot aliases it.
#[test]
fn read_snapshots_are_immutable_under_mutation() {
    let mut rng = SimRng::new(0x5705);
    for _case in 0..64 {
        let mut store = Store::new();
        let mut snapshots: Vec<(XsPath, Arc<[u8]>, Vec<u8>)> = Vec::new();
        let n_ops = rng.index(80);
        for _ in 0..n_ops {
            match random_op(&mut rng) {
                Op::Write(p, v) => {
                    let _ = store.write(0, &p, &v);
                }
                Op::Mkdir(p) => {
                    let _ = store.mkdir(0, &p);
                }
                Op::Rm(p) => {
                    let _ = store.rm(0, &p);
                }
                Op::Read(p) => {
                    // Take a snapshot and remember its bytes at read time.
                    if let Ok(rc) = store.read_rc(0, &p) {
                        let expect = rc.to_vec();
                        snapshots.push((p, rc, expect));
                    }
                }
                Op::Dir(p) => {
                    let _ = store.directory(0, &p);
                }
            }
            // Every snapshot ever taken still holds its original bytes.
            for (path, rc, expect) in &snapshots {
                assert_eq!(
                    &**rc, &expect[..],
                    "snapshot of {} mutated behind the reader's back",
                    path.as_str()
                );
            }
        }
    }
}

/// Scratch-buffer watch delivery: draining through a reused buffer
/// (`take_events_into`) delivers exactly the same event stream as the
/// allocating `take_events` — nothing lost, nothing duplicated, order
/// preserved — across interleaved registrations, mutations and drains.
#[test]
fn watch_scratch_reuse_loses_and_duplicates_nothing() {
    let mut rng = SimRng::new(0x5706);
    for _case in 0..64 {
        // Two identical worlds driven by the same op sequence; only the
        // drain mechanism differs.
        let mut store_a = Store::new();
        let mut table_a = WatchTable::new();
        let mut store_b = Store::new();
        let mut table_b = WatchTable::new();
        let mut scratch = Vec::new(); // reused across every drain of world B
        let mut delivered_a = 0usize;
        let mut delivered_b = 0usize;
        let mut fired = 0usize;

        let n_ops = rng.index(60);
        for _ in 0..n_ops {
            match rng.index(4) {
                0 => {
                    // Register a watch on a random path for a random conn.
                    let p = random_path(&mut rng);
                    let conn = rng.index(3) as u32;
                    let tok = format!("t{}", rng.index(4));
                    table_a.register(&store_a, conn, store_a.sym(&p), tok.clone());
                    table_b.register(&store_b, conn, store_b.sym(&p), tok);
                    fired += 1; // the initial sync event
                }
                1 => {
                    // Mutate: both worlds fire identically.
                    let p = random_path(&mut rng);
                    let _ = store_a.write(0, &p, b"v");
                    let _ = store_b.write(0, &p, b"v");
                    let fa = table_a.note_mutation_sym(&store_a, store_a.sym(&p));
                    let fb = table_b.note_mutation_sym(&store_b, store_b.sym(&p));
                    assert_eq!(fa, fb);
                    fired += fa.fired;
                }
                2 => {
                    // Drain one conn: fresh Vec vs reused scratch.
                    let conn = rng.index(3) as u32;
                    let evs = table_a.take_events(conn);
                    table_b.take_events_into(conn, &mut scratch);
                    assert_eq!(evs, scratch, "reused buffer must equal fresh drain");
                    delivered_a += evs.len();
                    delivered_b += scratch.len();
                }
                _ => {
                    let conn = rng.index(3) as u32;
                    assert_eq!(table_a.pending_count(conn), table_b.pending_count(conn));
                }
            }
        }
        // Conservation: drain everything and check nothing was lost or
        // duplicated along the way.
        for conn in 0..3u32 {
            let evs = table_a.take_events(conn);
            table_b.take_events_into(conn, &mut scratch);
            assert_eq!(evs, scratch);
            delivered_a += evs.len();
            delivered_b += scratch.len();
        }
        assert_eq!(delivered_a, fired, "every fired event delivered exactly once");
        assert_eq!(delivered_b, fired);
    }
}
