//! End-to-end integration tests across the whole stack: hosts, fleets,
//! checkpoints and migrations chained together.

use lightvm::guests::GuestImage;
use lightvm::net::Link;
use lightvm::{Host, ToolstackMode};
use simcore::{MachinePreset, SimTime};

#[test]
fn boot_a_mixed_fleet() {
    let mut host = Host::new(MachinePreset::XeonE5_1630V3, 1, ToolstackMode::LightVm, 1);
    let images = [
        GuestImage::unikernel_daytime(),
        GuestImage::unikernel_minipython(),
        GuestImage::tinyx_noop(),
        GuestImage::debian(),
        GuestImage::clickos_firewall(),
    ];
    let mut mem_expected = 0;
    for img in &images {
        for _ in 0..3 {
            host.launch_auto(img).expect("boots");
            mem_expected += img.footprint_bytes();
        }
    }
    assert_eq!(host.running(), 15);
    assert_eq!(host.memory_used(), mem_expected);
    assert!(host.cpu_utilization() > 0.0);
}

#[test]
fn checkpoint_chain_preserves_the_guest() {
    let mut host = Host::new(MachinePreset::XeonE5_1630V3, 1, ToolstackMode::LightVm, 2);
    let img = GuestImage::unikernel_daytime();
    let vm = host.launch("chained", &img).expect("boots");
    let mut dom = vm.dom;
    // Save/restore the same guest five times.
    for round in 0..5 {
        let (saved, _) = host.save(dom).expect("saves");
        assert_eq!(host.running(), 0, "round {round}");
        let (new_dom, _) = host.restore(&saved).expect("restores");
        assert_ne!(new_dom, dom);
        dom = new_dom;
    }
    assert_eq!(host.running(), 1);
    assert_eq!(host.plane.vm(dom).unwrap().name, "chained");
}

#[test]
fn migration_ring_across_three_hosts() {
    let mut hosts: Vec<Host> = (0..3)
        .map(|i| Host::new(MachinePreset::XeonE5_1630V3, 2, ToolstackMode::LightVm, 10 + i))
        .collect();
    let img = GuestImage::unikernel_daytime();
    let vm = hosts[0].launch("nomad", &img).expect("boots");
    let link = Link::lan();
    let mut dom = vm.dom;
    for hop in 0..3 {
        let (src, dst) = (hop % 3, (hop + 1) % 3);
        let (a, b) = if src < dst {
            let (l, r) = hosts.split_at_mut(dst);
            (&mut l[src], &mut r[0])
        } else {
            let (l, r) = hosts.split_at_mut(src);
            (&mut r[0], &mut l[dst])
        };
        let (new_dom, t) = a.migrate_to(b, &link, dom).expect("migrates");
        assert!(t < SimTime::from_millis(150), "hop {hop} took {t}");
        dom = new_dom;
    }
    // After three hops the guest is back on host 0.
    assert_eq!(hosts[0].running(), 1);
    assert_eq!(hosts[1].running(), 0);
    assert_eq!(hosts[2].running(), 0);
    assert_eq!(hosts[0].plane.vm(dom).unwrap().name, "nomad");
}

#[test]
fn all_five_modes_run_the_same_workload() {
    for mode in [
        ToolstackMode::Xl,
        ToolstackMode::ChaosXs,
        ToolstackMode::ChaosXsSplit,
        ToolstackMode::ChaosNoxs,
        ToolstackMode::LightVm,
    ] {
        let mut host = Host::new(MachinePreset::XeonE5_1630V3, 1, mode, 3);
        let img = GuestImage::unikernel_daytime();
        host.prewarm(&img);
        let mut doms = Vec::new();
        for _ in 0..10 {
            doms.push(host.launch_auto(&img).expect("boots").dom);
        }
        assert_eq!(host.running(), 10, "{mode:?}");
        for dom in doms {
            host.destroy(dom).expect("destroys");
        }
        assert_eq!(host.running(), 0, "{mode:?}");
        assert_eq!(host.plane.switch.port_count(), host.plane.daemon.len(), "{mode:?}: only pooled shells may keep ports");
    }
}

#[test]
fn interleaved_lifecycle_operations() {
    let mut host = Host::new(MachinePreset::XeonE5_1630V3, 2, ToolstackMode::LightVm, 4);
    let img = GuestImage::unikernel_minipython();
    let a = host.launch_auto(&img).unwrap();
    let b = host.launch_auto(&img).unwrap();
    let (saved_a, _) = host.save(a.dom).unwrap();
    let c = host.launch_auto(&img).unwrap();
    host.destroy(b.dom).unwrap();
    let (restored_a, _) = host.restore(&saved_a).unwrap();
    assert_eq!(host.running(), 2);
    assert!(host.plane.vm(restored_a).is_ok());
    assert!(host.plane.vm(c.dom).is_ok());
    assert!(host.plane.vm(b.dom).is_err());
}

#[test]
fn xenstore_state_is_clean_after_teardown() {
    let mut host = Host::new(MachinePreset::XeonE5_1630V3, 1, ToolstackMode::Xl, 5);
    let img = GuestImage::unikernel_daytime();
    let before_nodes = host.plane.xs.store().node_count();
    let mut doms = Vec::new();
    for _ in 0..8 {
        doms.push(host.launch_auto(&img).unwrap().dom);
    }
    assert!(host.plane.xs.store().node_count() > before_nodes);
    for dom in doms {
        host.destroy(dom).unwrap();
    }
    // Domain and device directories are gone; only backend roots and
    // bookkeeping remain.
    let after = host.plane.xs.store().node_count();
    assert!(
        after <= before_nodes + 16,
        "store leaked nodes: {before_nodes} -> {after}"
    );
}
