//! Measurement containers and figure emission for the LightVM reproduction.
//!
//! The figure harnesses in `crates/bench` produce [`Figure`]s: named sets
//! of labelled [`Series`] with axis metadata. A figure can be rendered as
//! an ASCII table (what the harness prints) and written as JSON + CSV so
//! EXPERIMENTS.md numbers are reproducible artefacts.

pub mod figure;
pub mod json;
pub mod report;
pub mod stats;

pub use figure::{Figure, Series};
pub use json::Json;
pub use report::{RunnerReport, TaskPerf, UnitPerf};
pub use stats::{Cdf, Summary};
