//! Discrete-event executor.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Handle to a scheduled event, usable for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

type EventFn = Box<dyn FnOnce(&mut Engine)>;

struct Scheduled {
    at: SimTime,
    seq: u64,
    f: EventFn,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    // Reverse ordering: the BinaryHeap is a max-heap, we want earliest-first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Membership set over the densely allocated event sequence numbers.
///
/// Sequence numbers are handed out monotonically, so a sliding bitmap
/// (one bit per not-yet-retired seq) gives O(1) insert/remove/contains
/// with no hashing on the per-event hot path. The window advances as the
/// oldest events retire, keeping memory proportional to the number of
/// outstanding events, not the total ever scheduled.
#[derive(Default)]
struct LiveSet {
    /// Seq corresponding to bit 0 of `bits[0]`.
    base: u64,
    bits: std::collections::VecDeque<u64>,
    count: usize,
}

impl LiveSet {
    /// Marks `seq` live. Seqs only grow, so this appends at the tail.
    #[inline]
    fn insert(&mut self, seq: u64) {
        debug_assert!(seq >= self.base);
        let idx = (seq - self.base) as usize;
        let word = idx / 64;
        while self.bits.len() <= word {
            self.bits.push_back(0);
        }
        self.bits[word] |= 1 << (idx % 64);
        self.count += 1;
    }

    /// Clears `seq`, returning whether it was live. Retires leading
    /// all-zero words so the window tracks the oldest outstanding event.
    #[inline]
    fn remove(&mut self, seq: u64) -> bool {
        if seq < self.base {
            return false;
        }
        let idx = (seq - self.base) as usize;
        let word = idx / 64;
        if word >= self.bits.len() {
            return false;
        }
        let mask = 1 << (idx % 64);
        if self.bits[word] & mask == 0 {
            return false;
        }
        self.bits[word] &= !mask;
        self.count -= 1;
        // Retire exhausted leading words; keep the last one so `base`
        // never overtakes the highest seq handed out.
        while self.bits.len() > 1 && self.bits.front() == Some(&0) {
            self.bits.pop_front();
            self.base += 64;
        }
        true
    }

    #[inline]
    fn contains(&self, seq: u64) -> bool {
        if seq < self.base {
            return false;
        }
        let idx = (seq - self.base) as usize;
        let word = idx / 64;
        word < self.bits.len() && self.bits[word] & (1 << (idx % 64)) != 0
    }
}

/// A single-threaded discrete-event executor over [`SimTime`].
///
/// Events are closures scheduled at absolute or relative virtual times.
/// Ties are broken by schedule order, so runs are fully deterministic.
///
/// Cancellation is tombstone-based: `cancel` clears the event's live bit
/// and the heap entry is dropped the next time it surfaces (or
/// immediately, when it is already on top). [`Engine::pending`] counts
/// only live events, so cancelling an event that already fired is a true
/// no-op — it cannot skew the count.
///
/// # Examples
///
/// ```
/// use simcore::{Engine, SimTime};
/// use std::cell::Cell;
/// use std::rc::Rc;
///
/// let mut engine = Engine::new();
/// let fired = Rc::new(Cell::new(false));
/// let f = fired.clone();
/// engine.schedule_in(SimTime::from_millis(5), move |_| f.set(true));
/// engine.run();
/// assert!(fired.get());
/// assert_eq!(engine.now(), SimTime::from_millis(5));
/// ```
pub struct Engine {
    now: SimTime,
    queue: BinaryHeap<Scheduled>,
    live: LiveSet,
    next_seq: u64,
    fired: u64,
}

/// Initial heap capacity: density sweeps schedule hundreds of in-flight
/// events per guest wave, so skip the first reallocation doublings.
const INITIAL_QUEUE_CAPACITY: usize = 256;

impl Engine {
    /// Creates an engine with the clock at zero.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: BinaryHeap::with_capacity(INITIAL_QUEUE_CAPACITY),
            live: LiveSet::default(),
            next_seq: 0,
            fired: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events fired so far. Together with host wall-clock this
    /// is the simulator's throughput counter (events/sec), reported per
    /// work unit by the figure runner.
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Number of events still pending. Cancelled and fired events never
    /// count, regardless of when they were cancelled.
    pub fn pending(&self) -> usize {
        self.live.count
    }

    /// Advances the clock without firing anything.
    ///
    /// Used by sequential cost accounting: an operation that "takes" `dt`
    /// simply pushes the clock forward.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if events scheduled before `now + dt` are
    /// pending, since skipping over them would reorder time.
    pub fn advance(&mut self, dt: SimTime) {
        let target = self.now + dt;
        debug_assert!(
            self.peek_time().map(|t| t >= target).unwrap_or(true),
            "advance() would skip over a pending event"
        );
        self.now = target;
    }

    /// Schedules `f` at absolute time `at` (clamped to now if in the past).
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        f: impl FnOnce(&mut Engine) + 'static,
    ) -> EventId {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.insert(seq);
        self.queue.push(Scheduled {
            at,
            seq,
            f: Box::new(f),
        });
        EventId(seq)
    }

    /// Schedules `f` after a relative delay.
    pub fn schedule_in(
        &mut self,
        dt: SimTime,
        f: impl FnOnce(&mut Engine) + 'static,
    ) -> EventId {
        self.schedule_at(self.now + dt, f)
    }

    /// Cancels a previously scheduled event. Cancelling an event that has
    /// already fired (or was already cancelled) is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        if self.live.remove(id.0) {
            // Eagerly drop tombstones that surfaced at the top of the
            // heap so peek/step stay O(1) amortised.
            self.drain_cancelled();
        }
    }

    /// Time of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.drain_cancelled();
        self.queue.peek().map(|s| s.at)
    }

    /// Fires the next event, advancing the clock to it. Returns false if
    /// the queue is empty.
    pub fn step(&mut self) -> bool {
        loop {
            match self.queue.pop() {
                Some(s) => {
                    if !self.live.remove(s.seq) {
                        // Tombstone of a cancelled event: skip it.
                        continue;
                    }
                    debug_assert!(s.at >= self.now, "event scheduled in the past");
                    self.now = s.at;
                    self.fired += 1;
                    (s.f)(self);
                    return true;
                }
                None => return false,
            }
        }
    }

    /// Runs until the queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until the clock would pass `t`; events at exactly `t` fire.
    /// The clock is left at `min(t, last event time)`... more precisely at
    /// `t` if any event beyond `t` remains, so callers can continue from a
    /// known instant.
    pub fn run_until(&mut self, t: SimTime) {
        loop {
            match self.peek_time() {
                Some(at) if at <= t => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.now < t {
            self.now = t;
        }
    }

    fn drain_cancelled(&mut self) {
        while let Some(s) = self.queue.peek() {
            if self.live.contains(s.seq) {
                break;
            }
            self.queue.pop();
        }
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let mut e = Engine::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for (i, ms) in [(0u32, 30u64), (1, 10), (2, 20)] {
            let o = order.clone();
            e.schedule_at(SimTime::from_millis(ms), move |_| o.borrow_mut().push(i));
        }
        e.run();
        assert_eq!(*order.borrow(), vec![1, 2, 0]);
        assert_eq!(e.now(), SimTime::from_millis(30));
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut e = Engine::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..5u32 {
            let o = order.clone();
            e.schedule_at(SimTime::from_millis(1), move |_| o.borrow_mut().push(i));
        }
        e.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut e = Engine::new();
        let hits = Rc::new(RefCell::new(Vec::new()));
        let h = hits.clone();
        e.schedule_in(SimTime::from_millis(1), move |eng| {
            let h2 = h.clone();
            eng.schedule_in(SimTime::from_millis(2), move |eng| {
                h2.borrow_mut().push(eng.now());
            });
        });
        e.run();
        assert_eq!(*hits.borrow(), vec![SimTime::from_millis(3)]);
    }

    #[test]
    fn cancellation_prevents_firing() {
        let mut e = Engine::new();
        let fired = Rc::new(RefCell::new(false));
        let f = fired.clone();
        let id = e.schedule_in(SimTime::from_millis(1), move |_| *f.borrow_mut() = true);
        e.cancel(id);
        e.run();
        assert!(!*fired.borrow());
        assert_eq!(e.pending(), 0);
    }

    #[test]
    fn cancel_after_fire_is_a_true_noop() {
        // Regression test: cancelling an already-fired event used to park
        // its id in the tombstone set forever, so pending() (computed as
        // queue.len() - cancelled.len()) drifted and could underflow.
        let mut e = Engine::new();
        let id = e.schedule_in(SimTime::from_millis(1), |_| {});
        assert_eq!(e.pending(), 1);
        e.run();
        assert_eq!(e.pending(), 0);
        e.cancel(id); // already fired: must not affect bookkeeping
        e.cancel(id); // double-cancel: same
        assert_eq!(e.pending(), 0);
        // A later schedule/fire cycle still balances.
        let id2 = e.schedule_in(SimTime::from_millis(1), |_| {});
        assert_eq!(e.pending(), 1);
        e.cancel(id2);
        e.cancel(id2);
        assert_eq!(e.pending(), 0);
        e.run();
        assert_eq!(e.pending(), 0);
        assert_eq!(e.events_fired(), 1);
    }

    #[test]
    fn cancelled_events_do_not_count_as_fired() {
        let mut e = Engine::new();
        for ms in 1..=10u64 {
            e.schedule_in(SimTime::from_millis(ms), |_| {});
        }
        let id = e.schedule_in(SimTime::from_millis(20), |_| {});
        e.cancel(id);
        e.run();
        assert_eq!(e.events_fired(), 10);
        assert_eq!(e.pending(), 0);
    }

    #[test]
    fn pending_is_exact_under_interleaved_cancel() {
        let mut e = Engine::new();
        let ids: Vec<_> = (1..=100u64)
            .map(|ms| e.schedule_in(SimTime::from_millis(ms), |_| {}))
            .collect();
        // Cancel every third, some twice.
        for id in ids.iter().step_by(3) {
            e.cancel(*id);
            e.cancel(*id);
        }
        let cancelled = ids.len().div_ceil(3);
        assert_eq!(e.pending(), ids.len() - cancelled);
        e.run();
        assert_eq!(e.pending(), 0);
        assert_eq!(e.events_fired(), (ids.len() - cancelled) as u64);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut e = Engine::new();
        let count = Rc::new(RefCell::new(0));
        for ms in [5u64, 10, 15] {
            let c = count.clone();
            e.schedule_at(SimTime::from_millis(ms), move |_| *c.borrow_mut() += 1);
        }
        e.run_until(SimTime::from_millis(10));
        assert_eq!(*count.borrow(), 2);
        assert_eq!(e.now(), SimTime::from_millis(10));
        e.run();
        assert_eq!(*count.borrow(), 3);
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut e = Engine::new();
        e.advance(SimTime::from_millis(10));
        let t = Rc::new(RefCell::new(SimTime::ZERO));
        let tc = t.clone();
        e.schedule_at(SimTime::from_millis(1), move |eng| {
            *tc.borrow_mut() = eng.now();
        });
        e.run();
        assert_eq!(*t.borrow(), SimTime::from_millis(10));
    }
}
