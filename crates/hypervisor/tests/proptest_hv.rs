//! Property tests for hypervisor resource accounting.

use hypervisor::{DomId, DomainConfig, EvtchnTable, GrantTable, Hypervisor};
use proptest::prelude::*;
use simcore::{CostModel, Meter};

const MIB: u64 = 1 << 20;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Memory used never exceeds the total and returns to baseline after
    /// every domain is destroyed.
    #[test]
    fn memory_conservation(sizes in prop::collection::vec(1u64..256, 1..20)) {
        let cost = CostModel::paper_defaults();
        let mut m = Meter::new();
        let mut hv = Hypervisor::new(64 * 1024 * MIB, 1024 * MIB, vec![0, 1]);
        let baseline = hv.memory.used();
        let mut doms = Vec::new();
        for &mib in &sizes {
            let d = hv.create_domain(&cost, &mut m, &DomainConfig { max_mem_mib: mib, vcpus: 1 }).unwrap();
            hv.populate_physmap(&cost, &mut m, d, mib).unwrap();
            doms.push((d, mib));
            prop_assert!(hv.memory.used() <= hv.memory.total());
        }
        let expect: u64 = sizes.iter().map(|s| s * MIB).sum();
        prop_assert_eq!(hv.memory.used() - baseline, expect);
        for (d, _) in doms {
            hv.destroy(&cost, &mut m, d).unwrap();
        }
        prop_assert_eq!(hv.memory.used(), baseline);
    }

    /// Event channels: after any sequence of alloc/bind/close, the open
    /// count equals allocations minus closed ends.
    #[test]
    fn evtchn_open_count(ops in prop::collection::vec(0u8..3, 1..50)) {
        let mut t = EvtchnTable::new();
        let mut live = Vec::new(); // (owner, port, bound)
        for op in ops {
            match op {
                0 => {
                    let p = t.alloc_unbound(DomId(0), DomId(1));
                    live.push((DomId(0), p, None));
                }
                1 => {
                    if let Some(pos) = live.iter().position(|(_, _, b)| b.is_none()) {
                        let (owner, port, _) = live[pos];
                        let local = t.bind_interdomain(DomId(1), owner, port).unwrap();
                        live[pos].2 = Some(local);
                    }
                }
                _ => {
                    if let Some((owner, port, bound)) = live.pop() {
                        t.close(owner, port).unwrap();
                        let _ = bound; // peer closed transitively
                    }
                }
            }
            let expect: usize = live.iter().map(|(_, _, b)| 1 + b.is_some() as usize).sum();
            prop_assert_eq!(t.open_channels(), expect);
        }
    }

    /// Grants: end_access only succeeds when unmapped; the table never
    /// leaks entries after a full cleanup.
    #[test]
    fn grant_lifecycle(n in 1usize..30) {
        let mut g = GrantTable::new();
        let mut refs = Vec::new();
        for i in 0..n {
            let r = g.grant_access(DomId(1), DomId(0), i as u64, false);
            g.map(DomId(0), DomId(1), r).unwrap();
            refs.push(r);
        }
        prop_assert_eq!(g.len(), n);
        for r in &refs {
            prop_assert!(g.end_access(DomId(1), *r).is_err(), "mapped grant must not end");
            g.unmap(DomId(0), DomId(1), *r).unwrap();
            g.end_access(DomId(1), *r).unwrap();
        }
        prop_assert!(g.is_empty());
    }
}
