//! Property tests: the xl config parser round-trips every config the
//! serialiser can produce and never panics on arbitrary input. Driven by
//! a seeded `SimRng` (offline build: no proptest).

use simcore::SimRng;
use toolstack::VmConfig;

fn pick(rng: &mut SimRng, alphabet: &[u8]) -> char {
    alphabet[rng.index(alphabet.len())] as char
}

fn random_str(rng: &mut SimRng, alphabet: &[u8], min: usize, max: usize) -> String {
    let len = min + rng.index(max - min + 1);
    (0..len).map(|_| pick(rng, alphabet)).collect()
}

const NAME_CHARS: &[u8] =
    b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.-";
const PATH_CHARS: &[u8] =
    b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789/._-";
const VIF_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789=.:/";
const DISK_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789=.:/,";

fn random_config(rng: &mut SimRng) -> VmConfig {
    VmConfig {
        name: random_str(rng, NAME_CHARS, 1, 24),
        kernel: random_str(rng, PATH_CHARS, 1, 40),
        memory_mib: 1 + rng.index(65535) as u64,
        vcpus: 1 + rng.index(7) as u32,
        vifs: (0..rng.index(3))
            .map(|_| random_str(rng, VIF_CHARS, 1, 30))
            .collect(),
        disks: (0..rng.index(3))
            .map(|_| random_str(rng, DISK_CHARS, 1, 30))
            .collect(),
    }
}

#[test]
fn round_trip() {
    let mut rng = SimRng::new(0xCF61);
    for _case in 0..256 {
        let cfg = random_config(&mut rng);
        let text = cfg.to_text();
        let parsed = VmConfig::parse(&text).unwrap();
        assert_eq!(parsed, cfg);
    }
}

#[test]
fn parser_never_panics() {
    let mut rng = SimRng::new(0xCF62);
    // Printable ASCII plus some multi-byte chars to stress slicing.
    let alphabet: Vec<char> = (0x20u8..0x7f)
        .map(|b| b as char)
        .chain(['é', '→', '\u{1F600}', 'ä', '\t'])
        .collect();
    for _case in 0..256 {
        let len = rng.index(400);
        let text: String = (0..len)
            .map(|_| alphabet[rng.index(alphabet.len())])
            .collect();
        let _ = VmConfig::parse(&text);
    }
}

#[test]
fn parser_never_panics_liney() {
    let mut rng = SimRng::new(0xCF63);
    const KEY_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    const VAL_CHARS: &[u8] = b"\"[]abcdefghijklmnopqrstuvwxyz0123456789 ,";
    for _case in 0..256 {
        let lines: Vec<String> = (0..rng.index(10))
            .map(|_| {
                let key = random_str(&mut rng, KEY_CHARS, 0, 8);
                let eq = if rng.chance(0.5) { " = " } else { "=" };
                let val = random_str(&mut rng, VAL_CHARS, 0, 20);
                if rng.chance(0.2) {
                    key
                } else {
                    format!("{key}{eq}{val}")
                }
            })
            .collect();
        let _ = VmConfig::parse(&lines.join("\n"));
    }
}
