//! The Dom0 software switch (Open vSwitch stand-in).
//!
//! Muxes/demuxes packets between physical NICs and guest vifs (paper
//! §4.1). For the control-plane experiments only port management matters;
//! data-path behaviour (throughput sharing, overload) lives in `lvnet`.

use std::collections::BTreeMap;

use hypervisor::DomId;
use simcore::{Category, CostModel, Meter};

/// Switch errors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SwitchError {
    /// Port name already attached.
    PortExists,
    /// No such port.
    NoSuchPort,
}

/// A software switch: named ports mapping to guest domains.
#[derive(Clone, Default, Debug)]
pub struct SoftwareSwitch {
    ports: BTreeMap<String, DomId>,
}

impl SoftwareSwitch {
    /// Creates an empty switch.
    pub fn new() -> SoftwareSwitch {
        SoftwareSwitch::default()
    }

    /// Attaches a vif port.
    pub fn add_port(
        &mut self,
        cost: &CostModel,
        meter: &mut Meter,
        name: &str,
        dom: DomId,
    ) -> Result<(), SwitchError> {
        meter.charge(Category::Devices, cost.switch_add_port);
        if self.ports.contains_key(name) {
            return Err(SwitchError::PortExists);
        }
        self.ports.insert(name.to_string(), dom);
        Ok(())
    }

    /// Detaches a vif port.
    pub fn del_port(
        &mut self,
        cost: &CostModel,
        meter: &mut Meter,
        name: &str,
    ) -> Result<(), SwitchError> {
        meter.charge(Category::Devices, cost.switch_del_port);
        self.ports.remove(name).map(|_| ()).ok_or(SwitchError::NoSuchPort)
    }

    /// Detaches every port of a domain (domain death).
    pub fn drop_domain(&mut self, dom: DomId) -> usize {
        let before = self.ports.len();
        self.ports.retain(|_, d| *d != dom);
        before - self.ports.len()
    }

    /// The domain behind a port.
    pub fn port_owner(&self, name: &str) -> Option<DomId> {
        self.ports.get(name).copied()
    }

    /// Number of attached ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// Conventional vif port name.
    pub fn vif_name(dom: DomId, devid: u32) -> String {
        format!("vif{}.{}", dom.0, devid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_del_ports() {
        let cost = CostModel::paper_defaults();
        let mut m = Meter::new();
        let mut sw = SoftwareSwitch::new();
        sw.add_port(&cost, &mut m, "vif1.0", DomId(1)).unwrap();
        assert_eq!(sw.port_owner("vif1.0"), Some(DomId(1)));
        assert_eq!(
            sw.add_port(&cost, &mut m, "vif1.0", DomId(2)).unwrap_err(),
            SwitchError::PortExists
        );
        sw.del_port(&cost, &mut m, "vif1.0").unwrap();
        assert_eq!(
            sw.del_port(&cost, &mut m, "vif1.0").unwrap_err(),
            SwitchError::NoSuchPort
        );
        assert!(m.of(Category::Devices) > simcore::SimTime::ZERO);
    }

    #[test]
    fn drop_domain_clears_its_ports() {
        let cost = CostModel::paper_defaults();
        let mut m = Meter::new();
        let mut sw = SoftwareSwitch::new();
        sw.add_port(&cost, &mut m, "vif1.0", DomId(1)).unwrap();
        sw.add_port(&cost, &mut m, "vif1.1", DomId(1)).unwrap();
        sw.add_port(&cost, &mut m, "vif2.0", DomId(2)).unwrap();
        assert_eq!(sw.drop_domain(DomId(1)), 2);
        assert_eq!(sw.port_count(), 1);
    }

    #[test]
    fn vif_names_follow_convention() {
        assert_eq!(SoftwareSwitch::vif_name(DomId(12), 0), "vif12.0");
    }
}
