//! High-density TLS termination (paper §7.3, Figure 16c).
//!
//! A CDN box terminates TLS for N customers, each needing an isolated
//! endpoint holding its long-term key. We boot the endpoint fleet (Tinyx
//! or unikernel) through the control plane and evaluate handshake
//! throughput with [`lvnet::TlsFleet`]: Tinyx tracks bare-metal
//! processes (~1,400 req/s at saturation); the axtls/lwip unikernel pays
//! a ~5x stack penalty.

use guests::GuestImage;
use lvnet::{TlsEndpointKind, TlsFleet};
use simcore::{MachinePreset, SimTime};
use toolstack::ToolstackMode;

use crate::host::Host;

/// One throughput point.
#[derive(Clone, Debug)]
pub struct TlsPoint {
    /// Endpoints serving.
    pub endpoints: usize,
    /// Requests per second.
    pub rps: f64,
}

/// One endpoint family's series.
#[derive(Clone, Debug)]
pub struct TlsSeries {
    /// Endpoint kind.
    pub kind: TlsEndpointKind,
    /// Throughput points.
    pub points: Vec<TlsPoint>,
    /// Guest boot time of one endpoint VM (ms; the §7.3 numbers: 6 ms
    /// unikernel, ~190 ms Tinyx); zero for bare metal.
    pub endpoint_boot_ms: f64,
    /// Memory per endpoint at runtime, bytes (0 for bare metal).
    pub endpoint_mem_bytes: u64,
}

/// Runs the experiment over the given endpoint counts for all three
/// endpoint families.
pub fn run(seed: u64, counts: &[usize]) -> Vec<TlsSeries> {
    [
        TlsEndpointKind::BareMetal,
        TlsEndpointKind::Tinyx,
        TlsEndpointKind::Unikernel,
    ]
    .into_iter()
    .map(|kind| {
        let fleet = TlsFleet::paper_setup(kind);
        let (boot, mem) = boot_one_endpoint(kind, seed);
        TlsSeries {
            kind,
            points: counts
                .iter()
                .map(|&n| TlsPoint {
                    endpoints: n,
                    rps: fleet.throughput_rps(n),
                })
                .collect(),
            endpoint_boot_ms: boot.as_millis_f64(),
            endpoint_mem_bytes: mem,
        }
    })
    .collect()
}

/// Boots a single endpoint of the given kind and reports (boot latency,
/// runtime memory).
fn boot_one_endpoint(kind: TlsEndpointKind, seed: u64) -> (SimTime, u64) {
    let image = match kind {
        TlsEndpointKind::BareMetal => return (SimTime::ZERO, 0),
        TlsEndpointKind::Tinyx => GuestImage::tinyx_tls(),
        TlsEndpointKind::Unikernel => GuestImage::unikernel_tls(),
    };
    let mut host = Host::new(
        MachinePreset::XeonE5_2690V4,
        2,
        ToolstackMode::LightVm,
        seed,
    );
    host.prewarm(&image);
    let vm = host.launch_auto(&image).expect("TLS endpoint boots");
    (vm.boot_time, image.footprint_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: u64 = 1 << 20;

    fn series(kind: TlsEndpointKind) -> TlsSeries {
        run(5, &[1, 10, 100, 1000])
            .into_iter()
            .find(|s| s.kind == kind)
            .unwrap()
    }

    #[test]
    fn tinyx_saturates_near_bare_metal() {
        let bm = series(TlsEndpointKind::BareMetal);
        let tx = series(TlsEndpointKind::Tinyx);
        let sat_bm = bm.points.last().unwrap().rps;
        let sat_tx = tx.points.last().unwrap().rps;
        assert!((1200.0..1600.0).contains(&sat_bm), "{sat_bm}");
        assert!(sat_tx / sat_bm > 0.9);
    }

    #[test]
    fn unikernel_is_about_a_fifth_of_tinyx() {
        let tx = series(TlsEndpointKind::Tinyx);
        let uk = series(TlsEndpointKind::Unikernel);
        let ratio = uk.points.last().unwrap().rps / tx.points.last().unwrap().rps;
        assert!((0.15..0.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn endpoint_footprints_match_section_7_3() {
        // Unikernel: boots in ~6 ms, 16 MB RAM. Tinyx: ~190 ms, 40 MB.
        let uk = series(TlsEndpointKind::Unikernel);
        assert!((3.0..15.0).contains(&uk.endpoint_boot_ms), "{}", uk.endpoint_boot_ms);
        assert!((16 * MIB..18 * MIB).contains(&uk.endpoint_mem_bytes));
        let tx = series(TlsEndpointKind::Tinyx);
        assert!((120.0..260.0).contains(&tx.endpoint_boot_ms), "{}", tx.endpoint_boot_ms);
        assert!((40 * MIB..42 * MIB).contains(&tx.endpoint_mem_bytes));
    }

    #[test]
    fn throughput_grows_with_endpoints_until_saturation() {
        let tx = series(TlsEndpointKind::Tinyx);
        let rps: Vec<f64> = tx.points.iter().map(|p| p.rps).collect();
        assert!(rps[1] > rps[0]);
        assert!(rps[2] >= rps[1]);
        assert!((rps[3] - rps[2]).abs() < 1.0, "saturated region is flat");
    }
}
