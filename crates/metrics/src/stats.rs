//! Summary statistics and empirical CDFs.

/// Summary statistics of a sample.
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// 50th percentile.
    pub median: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Computes a summary; returns `None` for an empty sample.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        Some(Summary {
            count: n,
            min: sorted[0],
            max: sorted[n - 1],
            mean,
            stddev: var.sqrt(),
            median: percentile_sorted(&sorted, 50.0),
            p90: percentile_sorted(&sorted, 90.0),
            p99: percentile_sorted(&sorted, 99.0),
        })
    }
}

/// Percentile of a **sorted** sample via linear interpolation.
///
/// # Panics
///
/// Panics if the sample is empty or `p` is outside `[0, 100]`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// An empirical cumulative distribution function.
#[derive(Clone, Debug)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples; returns `None` when empty.
    pub fn of(samples: &[f64]) -> Option<Cdf> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        Some(Cdf { sorted })
    }

    /// Fraction of samples `<= x`.
    pub fn at(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Value at percentile `p` (0..=100).
    pub fn percentile(&self, p: f64) -> f64 {
        percentile_sorted(&self.sorted, p)
    }

    /// The CDF as (value, fraction) steps, one per sample.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n as f64))
            .collect()
    }

    /// Sample size.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if the CDF holds no samples (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert!((s.stddev - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn percentiles_interpolate() {
        let sorted = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 10.0);
        assert_eq!(percentile_sorted(&sorted, 100.0), 40.0);
        assert_eq!(percentile_sorted(&sorted, 50.0), 25.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_of_empty_panics() {
        percentile_sorted(&[], 50.0);
    }

    #[test]
    fn cdf_fraction_and_percentile_agree() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let cdf = Cdf::of(&samples).unwrap();
        assert_eq!(cdf.at(50.0), 0.5);
        assert_eq!(cdf.at(0.0), 0.0);
        assert_eq!(cdf.at(1000.0), 1.0);
        assert!((cdf.percentile(90.0) - 90.1).abs() < 0.2);
    }

    #[test]
    fn cdf_points_are_monotone() {
        let cdf = Cdf::of(&[3.0, 1.0, 2.0]).unwrap();
        let pts = cdf.points();
        assert_eq!(pts.len(), 3);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }
}
