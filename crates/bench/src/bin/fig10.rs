//! Figure 10: LightVM vs Docker at high density on the 64-core AMD machine.
//!
//! Thin wrapper: the actual workload lives in the figure registry
//! (`bench::figures`), shared with the parallel `runall` runner.

fn main() {
    bench::runner::figure_main("fig10");
}
