//! The split toolstack's shell pool (paper §5.2, Figure 8).
//!
//! "The prepare phase is responsible for functionality common to all VMs
//! such as having the hypervisor generate an ID and other management
//! information and allocating CPU resources to the VM. We offload this
//! functionality to the chaos daemon, which generates a number of VM
//! shells and places them in a pool. The daemon ensures that there is
//! always a certain (configurable) number of shells available."

use std::collections::VecDeque;

use hypervisor::DomId;

/// A pre-created VM shell: domain + memory + pre-created devices,
/// waiting for an image and a name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VmShell {
    /// The pre-created domain.
    pub dom: DomId,
    /// Memory it was populated with (the shell's "flavor").
    pub mem_mib: u64,
    /// Whether a vif was pre-created.
    pub has_net: bool,
}

/// The chaos daemon's shell pool.
#[derive(Clone, Debug, Default)]
pub struct ChaosDaemon {
    pool: VecDeque<VmShell>,
    /// Shells the daemon keeps ready.
    pub target: usize,
    hits: u64,
    misses: u64,
    refill_failures: u64,
}

impl ChaosDaemon {
    /// Creates a daemon that keeps `target` shells pooled.
    pub fn new(target: usize) -> ChaosDaemon {
        ChaosDaemon {
            pool: VecDeque::new(),
            target,
            hits: 0,
            misses: 0,
            refill_failures: 0,
        }
    }

    /// Shells currently pooled.
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    /// True if the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }

    /// Takes a shell fitting the request, if one exists.
    pub fn take(&mut self, mem_mib: u64, needs_net: bool) -> Option<VmShell> {
        let pos = self
            .pool
            .iter()
            .position(|s| s.mem_mib == mem_mib && s.has_net == needs_net);
        match pos {
            Some(i) => {
                self.hits += 1;
                self.pool.remove(i)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// True if [`ChaosDaemon::take`] with these arguments would hit the
    /// pool, without consuming the shell or touching hit/miss counters
    /// (cloneboot uses this to predict the create path it will replay).
    pub fn peek(&self, mem_mib: u64, needs_net: bool) -> bool {
        self.pool
            .iter()
            .any(|s| s.mem_mib == mem_mib && s.has_net == needs_net)
    }

    /// Returns a freshly prepared shell to the pool.
    pub fn put(&mut self, shell: VmShell) {
        self.pool.push_back(shell);
    }

    /// (pool hits, pool misses) since start.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Records a background prepare that failed (and was rolled back);
    /// the daemon stops the current refill round and tries again on the
    /// next create.
    pub fn note_refill_failure(&mut self) {
        self.refill_failures += 1;
    }

    /// Background prepares that failed since start.
    pub fn refill_failures(&self) -> u64 {
        self.refill_failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shell(dom: u32, mem: u64, net: bool) -> VmShell {
        VmShell {
            dom: DomId(dom),
            mem_mib: mem,
            has_net: net,
        }
    }

    #[test]
    fn take_matches_flavor() {
        let mut d = ChaosDaemon::new(4);
        d.put(shell(1, 4, true));
        d.put(shell(2, 128, true));
        assert_eq!(d.take(128, true).unwrap().dom, DomId(2));
        assert!(d.take(128, true).is_none(), "only one 128 MiB shell");
        assert_eq!(d.take(4, true).unwrap().dom, DomId(1));
        assert!(d.is_empty());
    }

    #[test]
    fn net_requirement_must_match() {
        let mut d = ChaosDaemon::new(4);
        d.put(shell(1, 4, false));
        assert!(d.take(4, true).is_none());
        assert!(d.take(4, false).is_some());
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut d = ChaosDaemon::new(4);
        d.put(shell(1, 4, true));
        let _ = d.take(4, true);
        let _ = d.take(4, true);
        assert_eq!(d.stats(), (1, 1));
    }

    #[test]
    fn fifo_order_within_flavor() {
        let mut d = ChaosDaemon::new(4);
        d.put(shell(1, 4, true));
        d.put(shell(2, 4, true));
        assert_eq!(d.take(4, true).unwrap().dom, DomId(1));
        assert_eq!(d.take(4, true).unwrap().dom, DomId(2));
    }
}
