//! Property tests for the Tinyx build system.

use proptest::prelude::*;
use tinyx::{KernelBuilder, PackageDb, Platform, TinyxBuilder};

fn arb_app() -> impl Strategy<Value = &'static str> {
    prop::sample::select(PackageDb::standard().app_names())
}

fn arb_platform() -> impl Strategy<Value = Platform> {
    prop::sample::select(vec![Platform::Xen, Platform::Kvm, Platform::BareMetal])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Package closure is closed under dependencies.
    #[test]
    fn closure_is_closed(app in arb_app()) {
        let db = PackageDb::standard();
        let roots = db.objdump_deps(db.app(app).unwrap()).unwrap();
        let closure = db.closure(roots).unwrap();
        for name in &closure {
            for dep in db.package(name).unwrap().deps {
                prop_assert!(closure.contains(dep), "{name} needs {dep}");
            }
        }
    }

    /// The minimised kernel still boots the app on every platform, and
    /// minimisation never grows the config.
    #[test]
    fn minimized_kernel_boots(app in arb_app(), platform in arb_platform()) {
        let db = PackageDb::standard();
        let app = db.app(app).unwrap().clone();
        let mut b = KernelBuilder::debian_default(platform);
        let before = b.config().len();
        let candidates: Vec<&'static str> = b.config().options().copied().collect();
        b.minimize(&app, &candidates);
        prop_assert!(b.config().len() <= before);
        prop_assert!(b.boot_test(&app), "minimised kernel must still pass the test");
        // Dependency closure still holds.
        let enabled: Vec<&str> = b.config().options().copied().collect();
        for opt in enabled {
            prop_assert!(b.config().has(opt));
        }
    }

    /// Builds are deterministic and image sizes bounded.
    #[test]
    fn build_is_deterministic(app in arb_app()) {
        let builder = TinyxBuilder::new(Platform::Xen);
        let (a, _) = builder.build(app).unwrap();
        let (b, _) = builder.build(app).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert!(a.total_bytes() < 64 << 20, "image unexpectedly huge");
        prop_assert!(a.kernel_bytes > 0 && a.initramfs_bytes > 0);
    }

    /// The blacklist is honoured no matter the whitelist.
    #[test]
    fn blacklist_always_wins(app in arb_app(), extra in prop::sample::select(vec!["iperf", "python3-minimal", "openssh-server"])) {
        let mut builder = TinyxBuilder::new(Platform::Xen);
        builder.whitelist(extra);
        let (_, report) = builder.build(app).unwrap();
        for banned in ["dpkg", "apt", "perl-base", "debconf"] {
            prop_assert!(!report.packages.contains(&banned.to_string()));
        }
    }
}
