//! XenStore-mediated device creation: the full Figure 7a handshake.
//!
//! 1. The toolstack writes the front-end and back-end store entries in a
//!    transaction, "essentially announcing the existence of a new VM in
//!    need of a network device".
//! 2. The back-end, watching its backend directory, is triggered: it
//!    assigns an event channel and grant reference and writes them back
//!    to the store.
//! 3. When the VM boots it contacts the XenStore to retrieve the details
//!    the back-end published, binds, maps and connects.
//!
//! Every store access pays the protocol tax; the watch-driven back-end
//! activation and the transactional writes are the load the paper
//! measures in Figure 5's "xenstore" band.

use std::sync::Arc;

use hypervisor::{DeviceKind, DomId, Hypervisor};
use simcore::{CostModel, FaultPlan, FaultSite, Meter};
use xenstore::{u32_str, WatchEvent, XsError, Xenstored};

use crate::backend::{Backend, DevError};
use crate::hotplug::{watchdog_gate, Hotplug};
use crate::switch::SoftwareSwitch;
use crate::xenbus::XenbusState;

/// Watch token back-ends use for their backend directory.
const BACKEND_TOKEN: &str = "backend-watch";

/// How many times libxl retries a conflicted transaction before giving up.
pub const TXN_RETRIES: usize = 8;

/// Store-level failure wrapper.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum XsDevError {
    /// Store operation failed.
    Xs(XsError),
    /// Device-level failure.
    Dev(DevError),
}

impl From<XsError> for XsDevError {
    fn from(e: XsError) -> Self {
        XsDevError::Xs(e)
    }
}
impl From<DevError> for XsDevError {
    fn from(e: DevError) -> Self {
        XsDevError::Dev(e)
    }
}

impl std::fmt::Display for XsDevError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XsDevError::Xs(e) => write!(f, "xenstore: {e}"),
            XsDevError::Dev(e) => write!(f, "device: {e}"),
        }
    }
}

impl std::error::Error for XsDevError {}

/// Registers the back-end's watch on its backend directory (done once at
/// back-end start-up).
pub fn register_backend_watch(
    xs: &mut Xenstored,
    cost: &CostModel,
    meter: &mut Meter,
    kind: DeviceKind,
) {
    // /local/domain/0/backend/<kind>, composed without string formatting.
    let backend = xs.child_sym(xs.domain_dir_sym(0), "backend");
    let class = xs.child_sym(backend, kind.as_str());
    let token: Arc<str> = Arc::from(BACKEND_TOKEN);
    xs.watch_s(cost, meter, 0, class, &token);
    xs.drain_events(cost, meter, 0); // drain the registration event
}

/// Step 1: the toolstack announces the device by writing the front-end
/// and back-end entries in one transaction.
pub fn toolstack_announce_device(
    xs: &mut Xenstored,
    cost: &CostModel,
    meter: &mut Meter,
    kind: DeviceKind,
    dom: DomId,
    devid: u32,
    mac: &str,
) -> Result<(), XsDevError> {
    // All path skeletons are composed (and interned at most once) up
    // front; transaction retries then run allocation-free.
    let fe = xs.frontend_dir_sym(dom.0, kind.as_str(), devid);
    let be = xs.backend_dir_sym(0, kind.as_str(), dom.0, devid);
    let fe_backend = xs.child_sym(fe, "backend");
    let fe_backend_id = xs.child_sym(fe, "backend-id");
    let fe_handle = xs.child_sym(fe, "handle");
    let fe_state = xs.child_sym(fe, "state");
    let be_frontend = xs.child_sym(be, "frontend");
    let be_frontend_id = xs.child_sym(be, "frontend-id");
    let be_mac = xs.child_sym(be, "mac");
    let be_online = xs.child_sym(be, "online");
    let be_state = xs.child_sym(be, "state");
    let fe_path = xs.path_of(fe);
    let be_path = xs.path_of(be);
    let mut devid_buf = [0u8; 10];
    let devid_s = u32_str(&mut devid_buf, devid);
    let mut dom_buf = [0u8; 10];
    let dom_s = u32_str(&mut dom_buf, dom.0);
    xs.transaction(cost, meter, 0, TXN_RETRIES, |xs, cost, meter, id| {
        // Front-end side.
        xs.txn_write_s(cost, meter, 0, id, fe_backend, be_path.as_str().as_bytes())?;
        xs.txn_write_s(cost, meter, 0, id, fe_backend_id, b"0")?;
        xs.txn_write_s(cost, meter, 0, id, fe_handle, devid_s.as_bytes())?;
        xs.txn_write_s(cost, meter, 0, id, fe_state, XenbusState::Initialising.as_str().as_bytes())?;
        // Back-end side.
        xs.txn_write_s(cost, meter, 0, id, be_frontend, fe_path.as_str().as_bytes())?;
        xs.txn_write_s(cost, meter, 0, id, be_frontend_id, dom_s.as_bytes())?;
        xs.txn_write_s(cost, meter, 0, id, be_mac, mac.as_bytes())?;
        xs.txn_write_s(cost, meter, 0, id, be_online, b"1")?;
        xs.txn_write_s(cost, meter, 0, id, be_state, XenbusState::Initialising.as_str().as_bytes())
    })?;
    // Hand the front-end directory to the guest (libxl sets permissions
    // so the guest can update its own `state` node).
    let guest_owned = xenstore::Perms {
        owner: dom.0,
        others_read: true,
        others_write: false,
    };
    xs.set_perms_s(cost, meter, 0, fe, guest_owned)?;
    xs.set_perms_s(cost, meter, 0, fe_state, guest_owned)?;
    Ok(())
}

/// Step 2: the back-ends react to the watch: each allocates the event
/// channel and grant for devices of its class, writes them back to the
/// store, moves to `InitWait`, and runs the hotplug setup.
///
/// All back-ends share Dom0's connection, so events are dispatched by
/// the device-class component of the path; stale events for nodes that
/// have since been removed are skipped, as xenbus drivers do.
///
/// Events are delivered through the caller's `events` scratch buffer, so
/// steady-state processing allocates nothing.
#[allow(clippy::too_many_arguments)]
pub fn backend_process_events(
    xs: &mut Xenstored,
    hv: &mut Hypervisor,
    backends: &mut [&mut Backend],
    switch: &mut SoftwareSwitch,
    hotplug: Hotplug,
    cost: &CostModel,
    meter: &mut Meter,
    events: &mut Vec<WatchEvent>,
    faults: &mut FaultPlan,
) -> Result<usize, XsDevError> {
    xs.take_events_into(cost, meter, 0, events);
    let mut handled = 0;
    for ev in events.iter() {
        if &*ev.token != BACKEND_TOKEN {
            continue;
        }
        // Only the "state" write of a new announcement triggers set-up.
        // /local/domain/0/backend/<kind>/<domid>/<devid>/state
        if ev.path.depth() != 8 || ev.path.last_component() != Some("state") {
            continue;
        }
        let mut comps = ev.path.components();
        let kind_name = comps.nth(4).unwrap_or("");
        let dom_name = comps.next().unwrap_or("");
        let devid_name = comps.next().unwrap_or("");
        let state_raw = match xs.read(cost, meter, 0, &ev.path) {
            Ok(v) => v,
            // Stale event: the node was removed after the event fired.
            Err(XsError::NotFound) => continue,
            Err(e) => return Err(e.into()),
        };
        if &*state_raw != XenbusState::Initialising.as_str().as_bytes() {
            continue;
        }
        let backend = match backends.iter_mut().find(|b| b.kind().as_str() == kind_name) {
            Some(b) => b,
            None => continue, // a class nobody serves
        };
        let dom = DomId(dom_name.parse().map_err(|_| XsDevError::Xs(XsError::Invalid))?);
        let devid: u32 = devid_name.parse().map_err(|_| XsDevError::Xs(XsError::Invalid))?;
        let kind = backend.kind();
        if faults.should_inject(FaultSite::BackendRefusal) {
            // The backend declines the allocation outright (resource
            // exhaustion on its side). The toolstack observes the refusal
            // and unwinds the whole create; the announcement written in
            // step 1 is removed by the compensating teardown.
            return Err(XsDevError::Dev(DevError::Refused));
        }
        let (port, grant) = match backend.alloc_device(hv, cost, meter, dom, devid) {
            Ok(x) => x,
            Err(DevError::Exists) => continue, // re-delivered watch
            Err(e) => return Err(e.into()),
        };
        let be = xs.backend_dir_sym(0, kind.as_str(), dom.0, devid);
        let be_evtchn = xs.child_sym(be, "event-channel");
        let be_grant = xs.child_sym(be, "grant-ref");
        let be_state = xs.child_sym(be, "state");
        let mut buf = [0u8; 10];
        xs.write_s(cost, meter, 0, be_evtchn, u32_str(&mut buf, port.0).as_bytes())?;
        xs.write_s(cost, meter, 0, be_grant, u32_str(&mut buf, grant.0).as_bytes())?;
        xs.write_s(cost, meter, 0, be_state, XenbusState::InitWait.as_str().as_bytes())?;
        watchdog_gate(faults, FaultSite::HotplugTimeout, cost, meter)
            .map_err(XsDevError::Dev)?;
        if kind == DeviceKind::Net {
            hotplug
                .plug_vif(cost, meter, switch, dom, devid)
                .map_err(|e| XsDevError::Dev(DevError::from(e)))?;
        } else {
            hotplug.plug_vbd(cost, meter);
        }
        handled += 1;
    }
    Ok(handled)
}

/// Step 3: the booting guest contacts the XenStore, retrieves what the
/// back-end published, connects, and both sides move to `Connected`.
#[allow(clippy::too_many_arguments)]
pub fn frontend_connect_via_xenstore(
    xs: &mut Xenstored,
    hv: &mut Hypervisor,
    backend: &mut Backend,
    cost: &CostModel,
    meter: &mut Meter,
    dom: DomId,
    devid: u32,
    faults: &mut FaultPlan,
) -> Result<(), XsDevError> {
    // The handshake can stall before reaching `Connected` (backend wedged
    // between states); the guest's watchdog retries and eventually gives
    // up with a timeout the toolstack turns into a failed boot.
    watchdog_gate(faults, FaultSite::XenbusStall, cost, meter).map_err(XsDevError::Dev)?;
    let kind = backend.kind();
    let fe = xs.frontend_dir_sym(dom.0, kind.as_str(), devid);
    let be = xs.backend_dir_sym(0, kind.as_str(), dom.0, devid);
    // Guest reads its front-end dir to find the backend, then the
    // back-end's published parameters.
    let fe_backend = xs.child_sym(fe, "backend");
    let be_evtchn = xs.child_sym(be, "event-channel");
    let be_grant = xs.child_sym(be, "grant-ref");
    let be_mac = xs.child_sym(be, "mac");
    let fe_state = xs.child_sym(fe, "state");
    let be_state = xs.child_sym(be, "state");
    let _backend_path = xs.read_s(cost, meter, dom.0, fe_backend)?;
    let _port = xs.read_s(cost, meter, dom.0, be_evtchn)?;
    let _gref = xs.read_s(cost, meter, dom.0, be_grant)?;
    let _mac = xs.read_s(cost, meter, dom.0, be_mac)?;
    backend.frontend_connect(hv, cost, meter, dom, devid)?;
    xs.write_s(cost, meter, dom.0, fe_state, XenbusState::Connected.as_str().as_bytes())?;
    xs.write_s(cost, meter, 0, be_state, XenbusState::Connected.as_str().as_bytes())?;
    Ok(())
}

/// Device tear-down: closes the device and removes its store entries.
#[allow(clippy::too_many_arguments)]
pub fn destroy_device_via_xenstore(
    xs: &mut Xenstored,
    hv: &mut Hypervisor,
    backend: &mut Backend,
    switch: &mut SoftwareSwitch,
    hotplug: Hotplug,
    cost: &CostModel,
    meter: &mut Meter,
    dom: DomId,
    devid: u32,
) -> Result<(), XsDevError> {
    let kind = backend.kind();
    match backend.close_device(hv, cost, meter, dom, devid) {
        Ok(()) => {
            if kind == DeviceKind::Net {
                let _ = hotplug.unplug_vif(cost, meter, switch, dom, devid);
            }
        }
        // The backend never allocated this device (a create aborted
        // between announcement and allocation); teardown is idempotent
        // and still removes whatever store records the announce left.
        Err(DevError::NotFound) => {}
        Err(e) => return Err(e.into()),
    }
    let fe = xs.frontend_dir_sym(dom.0, kind.as_str(), devid);
    let be = xs.backend_dir_sym(0, kind.as_str(), dom.0, devid);
    let _ = xs.rm_s(cost, meter, 0, fe);
    // libxl removes the guest's whole per-domain backend directory, not
    // just the devid node (otherwise `/backend/<kind>/<domid>` dirs
    // accumulate forever).
    let be_domain_dir = xs.parent_sym(be);
    let _ = xs.rm_s(cost, meter, 0, be_domain_dir);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypervisor::DomainConfig;
    use xenstore::path::layout;
    use simcore::Category;
    use xenstore::Flavor;

    const GIB: u64 = 1 << 30;

    struct World {
        xs: Xenstored,
        hv: Hypervisor,
        be: Backend,
        sw: SoftwareSwitch,
        cost: CostModel,
    }

    fn setup() -> (World, Meter, DomId) {
        let mut w = World {
            xs: Xenstored::new(Flavor::Oxenstored, 7),
            hv: Hypervisor::new(8 * GIB, 0, vec![1, 2, 3]),
            be: Backend::new(DeviceKind::Net),
            sw: SoftwareSwitch::new(),
            cost: CostModel::paper_defaults(),
        };
        let mut m = Meter::new();
        let dom = w
            .hv
            .create_domain(&w.cost, &mut m, &DomainConfig::default())
            .unwrap();
        w.xs.connect(dom.0);
        register_backend_watch(&mut w.xs, &w.cost, &mut m, DeviceKind::Net);
        (w, m, dom)
    }

    #[test]
    fn full_figure_7a_handshake() {
        let (mut w, mut m, dom) = setup();
        let mac = Backend::mac_for(dom, 0);
        toolstack_announce_device(&mut w.xs, &w.cost, &mut m, DeviceKind::Net, dom, 0, &mac)
            .unwrap();
        let handled = backend_process_events(
            &mut w.xs, &mut w.hv, &mut [&mut w.be], &mut w.sw,
            Hotplug::Xendevd, &w.cost, &mut m, &mut Vec::new(), &mut FaultPlan::none(),
        )
        .unwrap();
        assert_eq!(handled, 1);
        assert_eq!(w.be.device(dom, 0).unwrap().state, XenbusState::InitWait);
        assert_eq!(w.sw.port_count(), 1);
        frontend_connect_via_xenstore(
            &mut w.xs, &mut w.hv, &mut w.be, &w.cost, &mut m, dom, 0,
            &mut FaultPlan::none(),
        )
        .unwrap();
        assert_eq!(w.be.device(dom, 0).unwrap().state, XenbusState::Connected);
        // The handshake paid both XenStore and Devices costs.
        assert!(m.of(Category::Xenstore) > simcore::SimTime::ZERO);
        assert!(m.of(Category::Devices) > simcore::SimTime::ZERO);
        // The store now holds the negotiated parameters.
        let be_dir = layout::backend_dir(0, "vif", dom.0, 0);
        let state = w
            .xs
            .store()
            .read_str(0, &be_dir.child("state").unwrap())
            .unwrap();
        assert_eq!(state, XenbusState::Connected.to_string());
    }

    #[test]
    fn redelivered_watch_is_idempotent() {
        let (mut w, mut m, dom) = setup();
        let mac = Backend::mac_for(dom, 0);
        toolstack_announce_device(&mut w.xs, &w.cost, &mut m, DeviceKind::Net, dom, 0, &mac)
            .unwrap();
        backend_process_events(
            &mut w.xs, &mut w.hv, &mut [&mut w.be], &mut w.sw,
            Hotplug::Xendevd, &w.cost, &mut m, &mut Vec::new(), &mut FaultPlan::none(),
        )
        .unwrap();
        // The backend's own state write re-fires its watch; processing
        // again must not allocate a second device.
        let handled = backend_process_events(
            &mut w.xs, &mut w.hv, &mut [&mut w.be], &mut w.sw,
            Hotplug::Xendevd, &w.cost, &mut m, &mut Vec::new(), &mut FaultPlan::none(),
        )
        .unwrap();
        assert_eq!(handled, 0);
        assert_eq!(w.be.count(), 1);
    }

    #[test]
    fn destroy_cleans_store_and_switch() {
        let (mut w, mut m, dom) = setup();
        let mac = Backend::mac_for(dom, 0);
        toolstack_announce_device(&mut w.xs, &w.cost, &mut m, DeviceKind::Net, dom, 0, &mac)
            .unwrap();
        backend_process_events(
            &mut w.xs, &mut w.hv, &mut [&mut w.be], &mut w.sw,
            Hotplug::Xendevd, &w.cost, &mut m, &mut Vec::new(), &mut FaultPlan::none(),
        )
        .unwrap();
        frontend_connect_via_xenstore(
            &mut w.xs, &mut w.hv, &mut w.be, &w.cost, &mut m, dom, 0,
            &mut FaultPlan::none(),
        )
        .unwrap();
        destroy_device_via_xenstore(
            &mut w.xs, &mut w.hv, &mut w.be, &mut w.sw,
            Hotplug::Xendevd, &w.cost, &mut m, dom, 0,
        )
        .unwrap();
        assert_eq!(w.be.count(), 0);
        assert_eq!(w.sw.port_count(), 0);
        assert!(!w.xs.store().exists(&layout::backend_dir(0, "vif", dom.0, 0)));
        assert!(!w.xs.store().exists(&layout::frontend_dir(dom.0, "vif", 0)));
    }

    #[test]
    fn backend_refusal_fault_surfaces_as_typed_error() {
        let (mut w, mut m, dom) = setup();
        let mac = Backend::mac_for(dom, 0);
        toolstack_announce_device(&mut w.xs, &w.cost, &mut m, DeviceKind::Net, dom, 0, &mac)
            .unwrap();
        let mut faults = FaultPlan::at_site(3, FaultSite::BackendRefusal);
        let err = backend_process_events(
            &mut w.xs, &mut w.hv, &mut [&mut w.be], &mut w.sw,
            Hotplug::Xendevd, &w.cost, &mut m, &mut Vec::new(), &mut faults,
        )
        .unwrap_err();
        assert_eq!(err, XsDevError::Dev(DevError::Refused));
        // The backend allocated nothing: no device, no switch port, no
        // grants to leak.
        assert_eq!(w.be.count(), 0);
        assert_eq!(w.sw.port_count(), 0);
        assert!(w.hv.gnttab.is_empty());
    }

    #[test]
    fn hotplug_timeout_fault_charges_watchdog_then_fails() {
        let (mut w, mut m, dom) = setup();
        let mac = Backend::mac_for(dom, 0);
        toolstack_announce_device(&mut w.xs, &w.cost, &mut m, DeviceKind::Net, dom, 0, &mac)
            .unwrap();
        let before = m.of(Category::Devices);
        let mut faults = FaultPlan::at_site(3, FaultSite::HotplugTimeout);
        let err = backend_process_events(
            &mut w.xs, &mut w.hv, &mut [&mut w.be], &mut w.sw,
            Hotplug::Xendevd, &w.cost, &mut m, &mut Vec::new(), &mut faults,
        )
        .unwrap_err();
        assert_eq!(err, XsDevError::Dev(DevError::Timeout));
        // Every attempt (initial + retries) paid at least the watchdog
        // timeout while the daemon stayed silent.
        let waited = m.of(Category::Devices) - before;
        let floor = w.cost.fault_watchdog_timeout * (simcore::FAULT_RETRIES as u64 + 1);
        assert!(waited >= floor, "waited {waited:?} < watchdog floor {floor:?}");
    }

    #[test]
    fn xenbus_stall_fault_times_out_frontend_connect() {
        let (mut w, mut m, dom) = setup();
        let mac = Backend::mac_for(dom, 0);
        toolstack_announce_device(&mut w.xs, &w.cost, &mut m, DeviceKind::Net, dom, 0, &mac)
            .unwrap();
        backend_process_events(
            &mut w.xs, &mut w.hv, &mut [&mut w.be], &mut w.sw,
            Hotplug::Xendevd, &w.cost, &mut m, &mut Vec::new(), &mut FaultPlan::none(),
        )
        .unwrap();
        let mut faults = FaultPlan::at_site(3, FaultSite::XenbusStall);
        let err = frontend_connect_via_xenstore(
            &mut w.xs, &mut w.hv, &mut w.be, &w.cost, &mut m, dom, 0, &mut faults,
        )
        .unwrap_err();
        assert_eq!(err, XsDevError::Dev(DevError::Timeout));
        // The device never reached Connected and can still be torn down.
        assert_eq!(w.be.device(dom, 0).unwrap().state, XenbusState::InitWait);
        destroy_device_via_xenstore(
            &mut w.xs, &mut w.hv, &mut w.be, &mut w.sw,
            Hotplug::Xendevd, &w.cost, &mut m, dom, 0,
        )
        .unwrap();
        assert!(w.hv.gnttab.is_empty());
    }

    #[test]
    fn announcement_is_transactional() {
        let (mut w, mut m, dom) = setup();
        let before_commits = w.xs.stats().txn_commits;
        toolstack_announce_device(
            &mut w.xs, &w.cost, &mut m, DeviceKind::Net, dom, 0, "00:16:3e:00:00:00",
        )
        .unwrap();
        assert_eq!(w.xs.stats().txn_commits, before_commits + 1);
    }
}
