//! Figure 4: domain instantiation and boot times for several guest
//! types, 1,000 sequential guests on the 4-core machine, vs Docker
//! containers and processes.

use bench::{series_ms, sweep_create_boot};
use container::{ContainerImage, DockerRuntime, ProcessRuntime};
use guests::GuestImage;
use metrics::{Figure, Series};
use simcore::{CostModel, Machine, MachinePreset};
use toolstack::ToolstackMode;

fn main() {
    let n = bench::scaled(1000);
    let machine = || Machine::preset(MachinePreset::XeonE5_1630V3);
    let mut fig = Figure::new(
        "fig04",
        "Creation and boot times vs number of running guests (xl toolstack)",
        "number of running guests",
        "time (ms)",
    );

    for (img, label) in [
        (GuestImage::debian(), "Debian"),
        (GuestImage::tinyx_noop(), "Tinyx"),
        (GuestImage::unikernel_daytime(), "MiniOS"),
    ] {
        let pts = sweep_create_boot(machine(), 1, ToolstackMode::Xl, &img, n, 42);
        fig.push_series(series_ms(&format!("{label} Create"), &pts, |p| p.create));
        fig.push_series(series_ms(&format!("{label} Boot"), &pts, |p| p.boot));
        eprintln!("# swept {label}");
    }

    // Docker: create (prep) and run (create+start) latencies.
    let cost = CostModel::paper_defaults();
    let mut docker = DockerRuntime::new(ContainerImage::noop(), machine().mem_bytes, 42);
    let mut create_s = Series::new("Docker Boot");
    let mut run_s = Series::new("Docker Run");
    for i in 0..n {
        let create = docker.create_time(&cost);
        let (_, run) = docker.run(&cost).expect("docker fits at this scale");
        create_s.push(i as f64 + 1.0, create.as_millis_f64());
        run_s.push(i as f64 + 1.0, run.as_millis_f64());
    }
    fig.push_series(create_s);
    fig.push_series(run_s);

    // Plain processes.
    let mut procs = ProcessRuntime::new(42);
    let mut proc_s = Series::new("Process Create");
    for i in 0..n {
        let (_, dt) = procs.spawn(&cost);
        proc_s.push(i as f64 + 1.0, dt.as_millis_f64());
    }
    fig.push_series(proc_s);

    fig.set_meta("machine", "Xeon E5-1630 v3, 1 Dom0 core + 3 guest cores");
    fig.set_meta("guests", n);
    let xs: Vec<f64> = bench::density_steps(n).iter().map(|&v| v as f64).collect();
    bench::finish(&fig, &xs);
}
