//! Ablations of the design choices DESIGN.md calls out, packaged as a
//! registry figure so `runall` schedules them on the same thread pool as
//! the paper figures (closing the ROADMAP item about the ablation
//! harness living outside the runner):
//!
//! 1. XenStore access-log rotation on/off (spike provenance, §4.2);
//! 2. oxenstored vs cxenstored cost profiles (footnote 3);
//! 3. split-toolstack pool size vs creation latency;
//! 4. bash hotplug vs xendevd in isolation;
//! 5. transaction interference level vs conflict/retry rate;
//! 6. page sharing (§9 future work) vs achievable density;
//! 7. cost-model sensitivity: ±20% on the five dominant calibrated
//!    costs vs mean xl creation latency (how robust the reproduction's
//!    conclusions are to calibration error).
//!
//! Each ablation is one work unit; results are emitted as summary series
//! (x = the swept configuration value) plus metadata for the scalar
//! outcomes, and land in `ablations.{json,csv}` next to the figures.

use devices::{Hotplug, SoftwareSwitch};
use guests::GuestImage;
use hypervisor::DomId;
use metrics::{Series, Summary};
use simcore::{CostModel, Machine, MachinePreset, Meter};
use toolstack::{ControlPlane, ToolstackMode};
use xenstore::{Flavor, XsPath, Xenstored};

use crate::figures::{meta, FigureSpec, Scale, UnitOutput, UnitSpec};

fn machine() -> Machine {
    Machine::preset(MachinePreset::XeonE5_1630V3)
}

fn sweep_creates(cp: &mut ControlPlane, img: &GuestImage, n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let (_, create, _) = cp.create_and_boot(&format!("vm-{i}"), img).unwrap();
            create.as_millis_f64()
        })
        .collect()
}

fn log_rotation_unit(scale: Scale) -> UnitSpec {
    let n = scale.scaled(500);
    UnitSpec::new("log-rotation", move || {
        let img = GuestImage::unikernel_daytime();
        let mut mean = Series::new("log-rotation: mean create (ms)");
        let mut p99 = Series::new("log-rotation: p99 create (ms)");
        let mut max = Series::new("log-rotation: max create (ms)");
        let mut out = UnitOutput::new();
        for (x, logging) in [(0.0, false), (1.0, true)] {
            let mut cp = ControlPlane::new(machine(), 1, ToolstackMode::Xl, 42);
            cp.xs.set_logging(logging);
            let times = sweep_creates(&mut cp, &img, n);
            let s = Summary::of(&times).unwrap();
            mean.push(x, s.mean);
            p99.push(x, s.p99);
            max.push(x, s.max);
            if logging {
                out.meta.push(meta("log_rotations", cp.xs.log_rotations()));
            }
            let per = UnitOutput::from_plane(&cp);
            out.events += per.events;
            out.virtual_ms += times.iter().sum::<f64>();
        }
        out.series = vec![mean, p99, max];
        out
    })
    .cost(95.0)
}

fn flavor_unit(_scale: Scale) -> UnitSpec {
    UnitSpec::new("xs-flavor", move || {
        let cost = CostModel::paper_defaults();
        let mut s = Series::new("flavor: 2000 writes (ms; 0=oxen, 1=cxen)");
        let mut out = UnitOutput::new();
        for (x, flavor) in [(0.0, Flavor::Oxenstored), (1.0, Flavor::Cxenstored)] {
            let mut xs = Xenstored::new(flavor, 42);
            let mut meter = Meter::new();
            for i in 0..2000 {
                let p = XsPath::parse(&format!("/bench/n{i}")).unwrap();
                xs.write(&cost, &mut meter, 0, &p, b"value").unwrap();
            }
            s.push(x, meter.total().as_millis_f64());
            out.events += xs.stats().requests;
            out.virtual_ms += meter.total().as_millis_f64();
        }
        out.series = vec![s];
        out
    })
    .cost(2.0)
}

fn pool_size_unit(scale: Scale) -> UnitSpec {
    let n = scale.scaled(500).min(200);
    UnitSpec::new("pool-size", move || {
        let img = GuestImage::unikernel_daytime();
        let mut mean = Series::new("pool: mean create (ms)");
        let mut p99 = Series::new("pool: p99 create (ms)");
        let mut out = UnitOutput::new();
        for pool in [0usize, 1, 8, 64] {
            let mut cp = ControlPlane::new(machine(), 1, ToolstackMode::LightVm, 42);
            cp.daemon.target = pool;
            cp.prewarm(&img);
            let times = sweep_creates(&mut cp, &img, n);
            let s = Summary::of(&times).unwrap();
            mean.push(pool as f64, s.mean);
            p99.push(pool as f64, s.p99);
            let (hits, misses) = cp.daemon.stats();
            out.meta.push(meta(&format!("pool{pool}_hit_miss"), format!("{hits}/{misses}")));
            let per = UnitOutput::from_plane(&cp);
            out.events += per.events;
            out.virtual_ms += times.iter().sum::<f64>();
        }
        out.series = vec![mean, p99];
        out
    })
    .cost(5.0)
}

fn hotplug_unit(_scale: Scale) -> UnitSpec {
    UnitSpec::new("hotplug", move || {
        let cost = CostModel::paper_defaults();
        let mut s = Series::new("hotplug: 100 vif plugs (ms; 0=bash, 1=xendevd)");
        let mut out = UnitOutput::new();
        for (x, hp) in [(0.0, Hotplug::BashScripts), (1.0, Hotplug::Xendevd)] {
            let mut sw = SoftwareSwitch::new();
            let mut meter = Meter::new();
            for i in 0..100u32 {
                hp.plug_vif(&cost, &mut meter, &mut sw, DomId(i + 1), 0).unwrap();
            }
            s.push(x, meter.total().as_millis_f64());
            out.events += 100;
            out.virtual_ms += meter.total().as_millis_f64();
        }
        out.series = vec![s];
        out
    })
    .cost(1.0)
}

fn interference_unit(scale: Scale) -> UnitSpec {
    let txns = scale.scaled(500);
    UnitSpec::new("interference", move || {
        let cost = CostModel::paper_defaults();
        let mut conflicts = Series::new("interference: txn conflicts");
        let mut retried = Series::new("interference: retried fraction (%)");
        let mut out = UnitOutput::new();
        for ambient in [0.0, 0.001, 0.005, 0.02] {
            let mut xs = Xenstored::new(Flavor::Oxenstored, 42);
            let mut meter = Meter::new();
            // Pre-populate nodes the transactions will read.
            for i in 0..10 {
                let p = XsPath::parse(&format!("/shared/n{i}")).unwrap();
                xs.write(&cost, &mut meter, 0, &p, b"v").unwrap();
            }
            xs.set_ambient_interference(ambient);
            for t in 0..txns {
                xs.transaction(&cost, &mut meter, 0, 16, |xs, cost, meter, id| {
                    for i in 0..10 {
                        let p = XsPath::parse(&format!("/shared/n{i}")).unwrap();
                        let _ = xs.txn_read(cost, meter, 0, id, &p)?;
                    }
                    let p = XsPath::parse(&format!("/out/t{t}")).unwrap();
                    xs.txn_write(cost, meter, 0, id, &p, b"done")
                })
                .unwrap();
            }
            let st = xs.stats();
            conflicts.push(ambient, st.txn_conflicts as f64);
            retried.push(
                ambient,
                100.0 * st.txn_conflicts as f64 / (st.txn_commits + st.txn_conflicts) as f64,
            );
            out.events += st.requests + st.watch_events;
            out.virtual_ms += meter.total().as_millis_f64();
        }
        out.series = vec![conflicts, retried];
        out
    })
    .cost(6.0)
}

fn page_sharing_unit(scale: Scale) -> UnitSpec {
    let cap = scale.scaled(4000);
    UnitSpec::new("page-sharing", move || {
        let mut s = Series::new("sharing: guests before OOM (8 GiB host)");
        let mut out = UnitOutput::new();
        for share in [None, Some(0.3), Some(0.6)] {
            let mut cp = ControlPlane::new(
                Machine::custom(4, 8 << 30), 1, ToolstackMode::ChaosNoxs, 42,
            );
            cp.set_page_sharing(share);
            let img = GuestImage::tinyx_noop();
            let mut n = 0;
            loop {
                match cp.create_and_boot(&format!("t-{n}"), &img) {
                    Ok(_) => n += 1,
                    Err(_) => break,
                }
                if n >= cap {
                    break;
                }
            }
            s.push(share.unwrap_or(0.0), n as f64);
            let per = UnitOutput::from_plane(&cp);
            out.events += per.events;
            out.virtual_ms += per.virtual_ms;
        }
        out.series = vec![s];
        out
    })
    .cost(5.0)
}

fn sensitivity_unit(scale: Scale) -> UnitSpec {
    let n = scale.scaled(200);
    UnitSpec::new("cost-sensitivity", move || {
        // One series per swept cost: x = scale factor on that single
        // cost (all others at calibration), y = mean xl create latency.
        // A reproduction conclusion that flips inside ±20% of one
        // primitive would be resting on calibration, not mechanism.
        let params: [(&str, fn(&mut CostModel, f64)); 5] = [
            ("xl_internal", |c, f| c.xl_internal = c.xl_internal.scale(f)),
            ("xl_qemu_spawn", |c, f| c.xl_qemu_spawn = c.xl_qemu_spawn.scale(f)),
            ("hotplug_bash", |c, f| c.hotplug_bash = c.hotplug_bash.scale(f)),
            ("mem_prep_per_mib", |c, f| {
                c.mem_prep_per_mib = c.mem_prep_per_mib.scale(f)
            }),
            ("xs_watch_fire", |c, f| c.xs_watch_fire = c.xs_watch_fire.scale(f)),
        ];
        let img = GuestImage::unikernel_daytime();
        let mut out = UnitOutput::new();
        for (name, tweak) in params {
            let mut s = Series::new(format!("sensitivity: {name} mean create (ms)"));
            for factor in [0.8, 1.0, 1.2] {
                let mut m = machine();
                tweak(&mut m.cost, factor);
                let mut cp = ControlPlane::new(m, 1, ToolstackMode::Xl, 42);
                let times = sweep_creates(&mut cp, &img, n);
                let sum = Summary::of(&times).unwrap();
                s.push(factor, sum.mean);
                let per = UnitOutput::from_plane(&cp);
                out.events += per.events;
                out.virtual_ms += times.iter().sum::<f64>();
            }
            out.series.push(s);
        }
        out
    })
    .cost(177.0)
}

/// The ablation suite as a registry figure: seven units, one per ablation.
pub fn spec(scale: Scale) -> FigureSpec {
    FigureSpec {
        id: "ablations",
        title: "Design-choice ablations (see DESIGN.md)",
        xlabel: "swept configuration value (per series)",
        ylabel: "outcome (per series)",
        sample_xs: vec![0.0, 1.0],
        meta: vec![meta("machine", "Xeon E5-1630 v3 unless noted")],
        units: vec![
            log_rotation_unit(scale),
            flavor_unit(scale),
            pool_size_unit(scale),
            hotplug_unit(scale),
            interference_unit(scale),
            page_sharing_unit(scale),
            sensitivity_unit(scale),
        ],
    }
}
