//! The control plane: one struct owning Dom0's moving parts, driving VM
//! creation through any of the paper's five toolstack configurations.
//!
//! | Mode            | Store    | Toolstack | Hotplug  | Pool |
//! |-----------------|----------|-----------|----------|------|
//! | `Xl`            | XenStore | xl/libxl  | bash     | no   |
//! | `ChaosXs`       | XenStore | chaos     | xendevd  | no   |
//! | `ChaosXsSplit`  | XenStore | chaos     | xendevd  | yes  |
//! | `ChaosNoxs`     | noxs     | chaos     | xendevd  | no   |
//! | `LightVm`       | noxs     | chaos     | xendevd  | yes  |

use std::collections::BTreeMap;
use std::sync::Arc;

use devices::{xsdev, Backend, Hotplug, SoftwareSwitch};
use guests::GuestImage;
use hypervisor::{DeviceKind, DomId, DomainConfig, Hypervisor, HvError};
use noxs::{driver as noxs_driver, SysctlBackend};
use simcore::{
    Category, CostModel, CpuSim, FaultPlan, FaultSite, Machine, Meter, SimRng, SimTime, TaskId,
    FAULT_RETRIES,
};
use xenstore::{u32_str, Flavor, WatchEvent, XsError, XsSym, Xenstored};

use crate::config::VmConfig;
use crate::split::{ChaosDaemon, VmShell};

const GIB: u64 = 1 << 30;
const MIB: u64 = 1 << 20;

/// Conflict probability a transaction-storm fault drives the store to
/// while the stormed phase runs: with ~6 touched nodes per registration
/// transaction the per-commit conflict probability is effectively 1, so
/// libxl's internal retries burn out and the phase-level retry (with
/// backoff) takes over.
const STORM_INTERFERENCE: f64 = 0.97;

/// The five control-plane configurations evaluated in Figure 9.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ToolstackMode {
    /// Stock Xen: xl/libxl + XenStore + bash hotplug.
    Xl,
    /// chaos/libchaos over the XenStore.
    ChaosXs,
    /// chaos + XenStore + split toolstack (pre-created shells).
    ChaosXsSplit,
    /// chaos + noxs (no XenStore).
    ChaosNoxs,
    /// Everything on: chaos + noxs + split toolstack.
    LightVm,
}

impl ToolstackMode {
    /// True if this mode goes through the XenStore.
    pub fn uses_xenstore(self) -> bool {
        matches!(self, ToolstackMode::Xl | ToolstackMode::ChaosXs | ToolstackMode::ChaosXsSplit)
    }

    /// True if this mode uses the pre-created shell pool.
    pub fn uses_split(self) -> bool {
        matches!(self, ToolstackMode::ChaosXsSplit | ToolstackMode::LightVm)
    }

    /// The hotplug mechanism this mode uses.
    pub fn hotplug(self) -> Hotplug {
        match self {
            ToolstackMode::Xl => Hotplug::BashScripts,
            _ => Hotplug::Xendevd,
        }
    }

    /// Display label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            ToolstackMode::Xl => "xl",
            ToolstackMode::ChaosXs => "chaos [XS]",
            ToolstackMode::ChaosXsSplit => "chaos [XS+split]",
            ToolstackMode::ChaosNoxs => "chaos [NoXS]",
            ToolstackMode::LightVm => "LightVM",
        }
    }
}

/// Control-plane errors.
#[derive(Clone, Debug, PartialEq)]
pub enum PlaneError {
    /// The guest name is already taken (xl's uniqueness check).
    NameTaken(String),
    /// Unknown domain.
    NoSuchVm,
    /// Hypervisor failure (incl. host memory exhaustion).
    Hv(HvError),
    /// XenStore failure.
    Xs(XsError),
    /// Device failure.
    Dev(String),
    /// A control-plane phase timed out after bounded retries (names the
    /// phase that gave up).
    Timeout(&'static str),
}

impl From<HvError> for PlaneError {
    fn from(e: HvError) -> Self {
        PlaneError::Hv(e)
    }
}
impl From<XsError> for PlaneError {
    fn from(e: XsError) -> Self {
        PlaneError::Xs(e)
    }
}
impl From<xsdev::XsDevError> for PlaneError {
    fn from(e: xsdev::XsDevError) -> Self {
        PlaneError::Dev(e.to_string())
    }
}
impl From<noxs_driver::NoxsError> for PlaneError {
    fn from(e: noxs_driver::NoxsError) -> Self {
        PlaneError::Dev(e.to_string())
    }
}
impl From<noxs::sysctl::SysctlError> for PlaneError {
    fn from(e: noxs::sysctl::SysctlError) -> Self {
        PlaneError::Dev(format!("{e:?}"))
    }
}
impl From<noxs::checkpoint::CheckpointError> for PlaneError {
    fn from(e: noxs::checkpoint::CheckpointError) -> Self {
        PlaneError::Dev(format!("{e:?}"))
    }
}

impl std::fmt::Display for PlaneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlaneError::NameTaken(n) => write!(f, "guest name {n} already in use"),
            PlaneError::NoSuchVm => write!(f, "no such VM"),
            PlaneError::Hv(e) => write!(f, "hypervisor: {e}"),
            PlaneError::Xs(e) => write!(f, "xenstore: {e}"),
            PlaneError::Dev(e) => write!(f, "device: {e}"),
            PlaneError::Timeout(phase) => write!(f, "phase timed out: {phase}"),
        }
    }
}

impl std::error::Error for PlaneError {}

/// What a `create` did: the domain plus the per-category breakdown
/// (Figure 5's instrumentation).
#[derive(Clone, Debug)]
pub struct CreateReport {
    /// The new domain.
    pub dom: DomId,
    /// Per-category cost breakdown.
    pub meter: Meter,
    /// Whether a pre-created shell was used.
    pub from_shell: bool,
}

impl CreateReport {
    /// Total creation latency.
    pub fn total(&self) -> SimTime {
        self.meter.total()
    }
}

/// A VM the control plane knows about.
#[derive(Clone, Debug)]
pub struct Vm {
    /// Guest name.
    pub name: String,
    /// The image it runs.
    pub image: GuestImage,
    /// Core its vCPU is pinned to.
    pub core: usize,
    /// Background CPU task once booted.
    pub bg: Option<TaskId>,
    /// Whether the guest finished booting.
    pub booted: bool,
    /// Net device ids.
    pub net_devids: Vec<u32>,
    /// Block device ids.
    pub blk_devids: Vec<u32>,
}

/// Per-site counters for errors swallowed on destroy/rollback paths.
///
/// Teardown must keep going whatever an individual step returns — a
/// half-created guest has half the state, so "nothing to remove" is
/// routine — but discarding *every* error silently can mask a leak
/// (a device that refuses to die stays in the backend table forever).
/// Each swallow site therefore classifies its error: absence
/// (`NotFound`-class — the thing is already gone, so nothing can have
/// leaked) stays silent with a comment at the site saying why, and
/// anything else increments the site's counter here. The churn census
/// reports the totals; monotone growth between matching checkpoints is
/// a leak fingerprint with the site name attached.
///
/// These are cumulative counters, so the census treats them as
/// report-only (they are excluded from checkpoint equality).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct TeardownErrors {
    /// XenStore-path device teardown failed with something other than
    /// "already gone" (rollback or destroy).
    pub xsdev: u64,
    /// noxs device teardown failed with something other than
    /// "already gone" (rollback or destroy).
    pub noxs: u64,
    /// Removing `/local/domain/<d>` or `/vm/<d>` failed with something
    /// other than `NotFound`.
    pub store_dirs: u64,
    /// The hypervisor failed to destroy a domain during rollback.
    pub hv_destroy: u64,
    /// Unregistering a just-registered front-end watch failed in the
    /// aborted-boot unwind.
    pub unwatch: u64,
    /// Tearing down a created-but-unbootable guest failed in the
    /// `create_and_boot` unwind.
    pub boot_unwind: u64,
}

impl TeardownErrors {
    /// Sum over every site.
    pub fn total(&self) -> u64 {
        self.xsdev + self.noxs + self.store_dirs + self.hv_destroy + self.unwatch + self.boot_unwind
    }
}

/// True if an XS-path device-teardown error means "already gone":
/// nothing existed, so nothing can have leaked.
fn xsdev_err_is_absence(e: &xsdev::XsDevError) -> bool {
    matches!(
        e,
        xsdev::XsDevError::Xs(XsError::NotFound)
            | xsdev::XsDevError::Dev(devices::DevError::NotFound)
    )
}

/// True if a noxs device-teardown error means "already gone": the
/// device-page entry was never written, the backend never allocated
/// the device, or the domain itself is gone.
fn noxs_err_is_absence(e: &noxs_driver::NoxsError) -> bool {
    use hypervisor::devpage::DevicePageError;
    matches!(
        e,
        noxs_driver::NoxsError::Dev(devices::DevError::NotFound)
            | noxs_driver::NoxsError::Hv(HvError::NoSuchDomain)
            | noxs_driver::NoxsError::Hv(HvError::DevPage(DevicePageError::NotFound))
    )
}

/// Dom0 and everything in it.
#[derive(Clone)]
pub struct ControlPlane {
    /// Which toolstack drives this host.
    pub mode: ToolstackMode,
    /// The machine this host runs on.
    pub machine: Machine,
    /// The XenStore daemon (present but idle in noxs modes).
    pub xs: Xenstored,
    /// The hypervisor.
    pub hv: Hypervisor,
    /// netback.
    pub net: Backend,
    /// blkback.
    pub blk: Backend,
    /// The console back-end (xenconsoled).
    pub console: Backend,
    /// The software switch.
    pub switch: SoftwareSwitch,
    /// The sysctl back-end (noxs power control).
    pub sysctl: SysctlBackend,
    /// The CPU contention model (all cores, Dom0's first).
    pub cpu: CpuSim,
    /// The split-toolstack daemon (pool used in split modes).
    pub daemon: ChaosDaemon,
    /// The deterministic fault plan (inactive by default: zero RNG
    /// draws, zero charges, byte-identical artefacts).
    pub faults: FaultPlan,
    /// Creates (or create+boots) that failed and were rolled back.
    pub(crate) create_failures: u64,
    /// Unexpected (non-absence) errors swallowed on teardown paths,
    /// by site (see [`TeardownErrors`]).
    pub teardown_errors: TeardownErrors,
    pub(crate) dom0_cores: usize,
    // Per-entry `Arc` so a forked host shares all prewarmed VM records
    // with its template by refcount; `Arc::make_mut` localises the copy
    // to the one record a mutation touches.
    pub(crate) vms: BTreeMap<DomId, Arc<Vm>>,
    pub(crate) rng: SimRng,
    /// Work done off the critical path (pool refills).
    pub background_meter: Meter,
    pub(crate) dom0_load_total: f64,
    pub(crate) created_total: u64,
    /// Page-sharing fraction (§9 future work): when set, instances of an
    /// already-running image share this fraction of their pages.
    page_sharing: Option<f64>,
    pub(crate) image_instances: std::collections::HashMap<String, usize>,
    /// Scratch buffer for backend watch-event processing (reused across
    /// every create/destroy; zero allocations in steady state).
    xs_events: Vec<WatchEvent>,
    /// Cached front-end watch tokens ("fe-0", "fe-1", ...): registering a
    /// guest's watches shares these instead of formatting new strings.
    fe_tokens: Vec<Arc<str>>,
    /// Scratch buffer for directory listings (xl's unique-name check).
    dir_scratch: Vec<XsSym>,
    /// Sum of `image.watches` over booted guests, maintained
    /// incrementally so `refresh_interference` is O(1) per boot/destroy
    /// (the integer sum is order-free, so it matches the old per-call
    /// fold exactly).
    booted_watches: u32,
    /// Scratch for cloneboot's uncharged store-shape probe.
    scan_scratch: Vec<u32>,
    /// When true (set by `cloneboot` around replayed creates),
    /// `xl_name_check` may replace its O(n) store scan with the
    /// closed-form charge in [`Xenstored::replay_name_scan`] whenever the
    /// store shape matches the VM table exactly; any mismatch falls back
    /// to the real scan silently.
    pub(crate) fast_name_scan: bool,
    /// Whether the last `xl_name_check` took the closed-form path.
    pub(crate) last_scan_replayed: bool,
    /// Store requests the last closed-form scan avoided (1 directory +
    /// one read per entry).
    pub(crate) last_scan_saved: u64,
    /// When present, create phases append `(tag, running meter total)`
    /// breakpoints here (cloneboot exemplar recording).
    pub(crate) phase_trace: Option<Vec<(&'static str, SimTime)>>,
    /// Identity of this plane's interner ancestry: clones and snapshot
    /// forks inherit it, fresh planes draw a new one. Part of the
    /// cloneboot template key — a lineage pins mode, machine, Dom0
    /// sizing and interned-symbol history at once.
    pub(crate) lineage: u64,
    /// Clone-boot counters for creates run *on this plane* (see
    /// [`crate::cloneboot::CloneStats`]); callers diff them around
    /// their builds for race-free per-task attribution.
    pub clone_stats: crate::cloneboot::CloneStats,
}

/// Lineage ids for [`ControlPlane::new`]; 0 is never issued.
static NEXT_LINEAGE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

impl ControlPlane {
    /// Creates a host: `dom0_cores` cores for Dom0, the rest for guests,
    /// 4 GiB reserved for Dom0.
    ///
    /// # Panics
    ///
    /// Panics if `dom0_cores >= machine.cores`.
    pub fn new(machine: Machine, dom0_cores: usize, mode: ToolstackMode, seed: u64) -> ControlPlane {
        assert!(
            dom0_cores >= 1 && dom0_cores < machine.cores,
            "need at least one Dom0 core and one guest core"
        );
        let guest_cores: Vec<usize> = (dom0_cores..machine.cores).collect();
        let hv = Hypervisor::new(machine.mem_bytes, 4 * GIB, guest_cores);
        let cpu = CpuSim::new(machine.cores, machine.cpu_speed);
        ControlPlane {
            mode,
            xs: Xenstored::new(Flavor::Oxenstored, seed ^ 0x5eed),
            hv,
            net: Backend::new(DeviceKind::Net),
            blk: Backend::new(DeviceKind::Block),
            console: Backend::new(DeviceKind::Console),
            switch: SoftwareSwitch::new(),
            sysctl: SysctlBackend::new(),
            cpu,
            daemon: ChaosDaemon::new(8),
            faults: FaultPlan::none(),
            create_failures: 0,
            teardown_errors: TeardownErrors::default(),
            dom0_cores,
            vms: BTreeMap::new(),
            rng: SimRng::new(seed),
            background_meter: Meter::new(),
            dom0_load_total: 0.0,
            created_total: 0,
            page_sharing: None,
            image_instances: std::collections::HashMap::new(),
            xs_events: Vec::new(),
            fe_tokens: Vec::new(),
            dir_scratch: Vec::new(),
            booted_watches: 0,
            scan_scratch: Vec::new(),
            fast_name_scan: false,
            last_scan_replayed: false,
            last_scan_saved: 0,
            phase_trace: None,
            lineage: NEXT_LINEAGE.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            clone_stats: crate::cloneboot::CloneStats::default(),
            machine,
        }
        .finish_init()
    }

    fn finish_init(mut self) -> ControlPlane {
        if self.mode.uses_xenstore() {
            // Back-ends register their watches at start-up.
            let cost = self.machine.cost.clone();
            let mut m = Meter::new();
            xsdev::register_backend_watch(&mut self.xs, &cost, &mut m, DeviceKind::Net);
            xsdev::register_backend_watch(&mut self.xs, &cost, &mut m, DeviceKind::Block);
            xsdev::register_backend_watch(&mut self.xs, &cost, &mut m, DeviceKind::Console);
        }
        self
    }

    /// The cost calibration in use.
    pub fn cost(&self) -> CostModel {
        self.machine.cost.clone()
    }

    /// Enables SnowFlock-style page sharing (paper §9): instances of an
    /// image already running on the host share `fraction` of their pages
    /// (read-only text and zero pages de-duplicated).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1)`.
    pub fn set_page_sharing(&mut self, fraction: Option<f64>) {
        if let Some(f) = fraction {
            assert!((0.0..1.0).contains(&f), "share fraction must be in [0, 1)");
        }
        self.page_sharing = fraction;
    }

    /// MiB to actually populate for an instance of `image`: the full
    /// footprint for the first instance, de-duplicated for later ones.
    fn effective_mem_mib(&self, image: &GuestImage) -> u64 {
        match self.page_sharing {
            Some(share) if self.image_instances.get(&image.name).copied().unwrap_or(0) > 0 => {
                ((image.mem_mib as f64) * (1.0 - share)).ceil().max(1.0) as u64
            }
            _ => image.mem_mib,
        }
    }

    /// Installs a fault plan. Pass [`FaultPlan::none()`] to disable
    /// injection again; an inactive plan never touches the RNG, so
    /// fault-free runs stay byte-identical with or without this call.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// Creates that failed and were rolled back (per-domain failures;
    /// the process never panics on an injected fault).
    pub fn create_failures(&self) -> u64 {
        self.create_failures
    }

    /// Number of VMs the control plane tracks.
    pub fn running_count(&self) -> usize {
        self.vms.len()
    }

    /// VM record access.
    pub fn vm(&self, dom: DomId) -> Result<&Vm, PlaneError> {
        self.vms.get(&dom).map(|v| v.as_ref()).ok_or(PlaneError::NoSuchVm)
    }

    /// Iterates over (domid, vm).
    pub fn vms(&self) -> impl Iterator<Item = (&DomId, &Vm)> {
        self.vms.iter().map(|(d, v)| (d, v.as_ref()))
    }

    /// Guest memory in use (bytes), the Figure 14 quantity.
    pub fn guest_memory_used(&self) -> u64 {
        self.vms
            .values()
            .map(|vm| vm.image.footprint_bytes())
            .sum()
    }

    /// Whole-machine CPU utilisation (0..=1), the Figure 15 quantity.
    pub fn cpu_utilization(&self) -> f64 {
        let guest = self.cpu.total_utilization();
        let dom0 = (self.dom0_load_total / self.dom0_cores as f64).min(1.0);
        let cores = self.machine.cores as f64;
        (guest * cores + dom0 * self.dom0_cores as f64).min(cores) / cores
            - (self.cpu_dom0_double_count())
    }

    fn cpu_dom0_double_count(&self) -> f64 {
        // Dom0 load lives outside the CpuSim (guests only), so nothing is
        // double counted; kept as an explicit zero for clarity.
        0.0
    }

    /// Dom0 contention multiplier on toolstack work: backends and
    /// xenstored compete with per-guest housekeeping on Dom0's cores.
    fn dom0_slowdown(&self) -> f64 {
        let load = (self.dom0_load_total / self.dom0_cores as f64).min(0.85);
        1.0 / (1.0 - load)
    }

    /// Updates the ambient-interference level from the registered
    /// watch count (stand-in for the running guests' own xenbus traffic).
    /// Bookkeeping for a guest entering/leaving the booted set (watch
    /// registrations feed the ambient-interference level).
    pub(crate) fn note_booted(&mut self, watches: u32) {
        self.booted_watches += watches;
    }

    pub(crate) fn note_unbooted(&mut self, watches: u32) {
        self.booted_watches -= watches;
    }

    pub(crate) fn refresh_interference(&mut self) {
        debug_assert_eq!(
            self.booted_watches,
            self.vms.values().filter(|v| v.booted).map(|v| v.image.watches).sum::<u32>(),
            "incremental booted-watch sum drifted from the VM map"
        );
        self.xs
            .set_ambient_interference((self.booted_watches as f64 * 1.2e-6).min(0.02));
    }

    // --- create ---------------------------------------------------------------

    /// Creates (but does not boot) a VM, returning the Figure 5-style
    /// breakdown.
    pub fn create_vm(&mut self, name: &str, image: &GuestImage) -> Result<CreateReport, PlaneError> {
        let cost = self.cost();
        let mut meter = Meter::new();

        // Config parsing (all modes; chaos parses the same format). Only
        // the serialised size matters for the charge, computed without
        // materialising the config text.
        let config_len = VmConfig::text_len_for_image(name, image);
        meter.charge(
            Category::Config,
            cost.config_parse_base + cost.config_parse_per_byte * config_len as u64,
        );
        self.trace_phase("config", &meter);

        // Toolstack-internal state keeping.
        meter.charge(
            Category::Toolstack,
            match self.mode {
                ToolstackMode::Xl => cost.xl_internal,
                _ => cost.chaos_internal,
            },
        );
        self.trace_phase("internal", &meter);

        let created = if self.mode.uses_split() {
            match self.daemon.take(image.mem_mib, image.needs_net) {
                Some(shell) => self
                    .finish_from_shell(&cost, &mut meter, shell, name, image)
                    .map(|dom| (dom, true)),
                None => self.full_create(&cost, &mut meter, name, image).map(|dom| (dom, false)),
            }
        } else {
            self.full_create(&cost, &mut meter, name, image).map(|dom| (dom, false))
        };
        let (dom, from_shell) = match created {
            Ok(v) => v,
            // The failed create already rolled itself back; one domain
            // failing must not take the host down, so record and return.
            Err(e) => {
                self.create_failures += 1;
                return Err(e);
            }
        };
        self.trace_phase("domain", &meter);

        // Image build: parse the kernel image and lay it out in memory;
        // Linux kernels (Tinyx/Debian) additionally pay decompression and
        // initramfs unpacking.
        let pressure = self.hv.memory.factor().min(64.0);
        let mib = image.loaded_bytes().div_ceil(MIB);
        let mut load = cost.image_parse_base + (cost.image_load_per_mib * mib).scale(pressure);
        if image.kind != guests::GuestKind::Unikernel {
            load += cost.kernel_decompress_per_mib * mib;
        }
        meter.charge(Category::Load, load);
        self.trace_phase("load", &meter);

        // Boot it last: the domain is left paused; `boot_vm` unpauses.
        let slow = self.dom0_slowdown();
        if slow > 1.0 {
            let extra = meter.total().scale(slow - 1.0);
            meter.charge(Category::Toolstack, extra);
        }

        // Jitter the total a little so repeated runs show measurement
        // noise rather than perfectly smooth curves.
        let noise = self
            .rng
            .jitter(meter.total(), 0.03)
            .saturating_sub(meter.total());
        if !noise.is_zero() {
            meter.charge(Category::Toolstack, noise);
        }

        let core = self.hv.domain(dom)?.vcpu_cores[0];
        *self
            .image_instances
            .entry(image.name.clone())
            .or_insert(0) += 1;
        self.vms.insert(
            dom,
            Arc::new(Vm {
                name: name.to_string(),
                image: image.clone(),
                core,
                bg: None,
                booted: false,
                net_devids: if image.needs_net { vec![0] } else { vec![] },
                blk_devids: if image.needs_block { vec![0] } else { vec![] },
            }),
        );
        self.created_total += 1;

        // The split daemon replenishes the pool off the critical path.
        if self.mode.uses_split() {
            self.daemon_refill(image);
        }
        self.trace_phase("finish", &meter);
        Ok(CreateReport { dom, meter, from_shell })
    }

    /// The non-pooled create path: hypervisor work, registration and
    /// device creation. A failure after the domain exists triggers a
    /// compensating teardown, so a half-created guest never leaks store
    /// nodes, watches, grants or event channels.
    fn full_create(
        &mut self,
        cost: &CostModel,
        meter: &mut Meter,
        name: &str,
        image: &GuestImage,
    ) -> Result<DomId, PlaneError> {
        if self.mode == ToolstackMode::Xl {
            self.xl_name_check(cost, meter, name)?;
        }

        // Hypervisor reservation + vCPUs. Everything past this point has
        // state to unwind on failure.
        let dom = self.hv.create_domain(
            cost,
            meter,
            &DomainConfig {
                max_mem_mib: image.mem_mib,
                vcpus: 1,
            },
        )?;
        match self.provision(cost, meter, dom, name, image) {
            Ok(()) => Ok(dom),
            Err(e) => {
                self.rollback_partial_create(cost, meter, dom, image);
                Err(e)
            }
        }
    }

    /// Everything `full_create` does once the domain exists: memory
    /// preparation, registration and device creation. Split out so any
    /// mid-create failure funnels through `rollback_partial_create`.
    fn provision(
        &mut self,
        cost: &CostModel,
        meter: &mut Meter,
        dom: DomId,
        name: &str,
        image: &GuestImage,
    ) -> Result<(), PlaneError> {
        // Under page sharing, repeat instances only populate their
        // unique pages.
        let mem = self.effective_mem_mib(image);
        self.hv.populate_physmap(cost, meter, dom, mem)?;

        if self.mode.uses_xenstore() {
            self.xs.connect(dom.0);
            self.xs_register_domain(cost, meter, dom, name)?;
            for devid in net_ids(image) {
                let mac = Backend::mac_for(dom, devid);
                xsdev::toolstack_announce_device(
                    &mut self.xs, cost, meter, DeviceKind::Net, dom, devid, &mac,
                )?;
                self.process_backend_events(cost, meter, DeviceKind::Net)?;
            }
            for devid in blk_ids(image) {
                let mac = String::new();
                xsdev::toolstack_announce_device(
                    &mut self.xs, cost, meter, DeviceKind::Block, dom, devid, &mac,
                )?;
                self.process_backend_events(cost, meter, DeviceKind::Block)?;
            }
            if image.needs_console {
                xsdev::toolstack_announce_device(
                    &mut self.xs, cost, meter, DeviceKind::Console, dom, 0, "",
                )?;
                self.process_backend_events(cost, meter, DeviceKind::Console)?;
            }
            if self.mode == ToolstackMode::Xl {
                // xl spawns a qemu device model per guest (PV console and
                // qdisk backend).
                meter.charge(Category::Devices, cost.xl_qemu_spawn);
            }
        } else {
            noxs_driver::setup_device_page(&mut self.hv, cost, meter, dom)?;
            self.sysctl.setup(&mut self.hv, cost, meter, dom)?;
            for devid in net_ids(image) {
                noxs_driver::create_device(
                    &mut self.hv, &mut self.net, &mut self.switch, self.mode.hotplug(),
                    cost, meter, dom, devid, &mut self.faults,
                )?;
            }
            for devid in blk_ids(image) {
                meter.charge(Category::Devices, cost.noxs_ioctl);
                let (evtchn, grant) = self
                    .blk
                    .alloc_device(&mut self.hv, cost, meter, dom, devid)
                    .map_err(|e| PlaneError::Dev(e.to_string()))?;
                self.hv.devpage_write(
                    cost,
                    meter,
                    DomId::DOM0,
                    dom,
                    hypervisor::DevicePageEntry {
                        kind: DeviceKind::Block,
                        devid,
                        backend: DomId::DOM0,
                        evtchn,
                        grant,
                    },
                )?;
            }
            if image.needs_console {
                meter.charge(Category::Devices, cost.noxs_ioctl);
                let (evtchn, grant) = self
                    .console
                    .alloc_device(&mut self.hv, cost, meter, dom, 0)
                    .map_err(|e| PlaneError::Dev(e.to_string()))?;
                self.hv.devpage_write(
                    cost,
                    meter,
                    DomId::DOM0,
                    dom,
                    hypervisor::DevicePageEntry {
                        kind: DeviceKind::Console,
                        devid: 0,
                        backend: DomId::DOM0,
                        evtchn,
                        grant,
                    },
                )?;
            }
        }
        Ok(())
    }

    /// Execute-phase completion when a shell is available: only the
    /// VM-specific work remains. On failure the shell — which is a fully
    /// provisioned domain — is rolled back, not returned to the pool.
    fn finish_from_shell(
        &mut self,
        cost: &CostModel,
        meter: &mut Meter,
        shell: VmShell,
        name: &str,
        image: &GuestImage,
    ) -> Result<DomId, PlaneError> {
        let dom = shell.dom;
        match self.finish_from_shell_inner(cost, meter, dom, name, image) {
            Ok(()) => Ok(dom),
            Err(e) => {
                self.rollback_partial_create(cost, meter, dom, image);
                Err(e)
            }
        }
    }

    fn finish_from_shell_inner(
        &mut self,
        cost: &CostModel,
        meter: &mut Meter,
        dom: DomId,
        name: &str,
        image: &GuestImage,
    ) -> Result<(), PlaneError> {
        if self.mode.uses_xenstore() {
            self.xs.connect(dom.0);
            // Finalise naming and device initialisation in a transaction:
            // the split toolstack still pays the store for VM-specific
            // records (why chaos [XS+split] grows to ~25 ms at 1,000
            // guests while chaos [NoXS] does not).
            let d = self.xs.domain_dir_sym(dom.0);
            let d_name = self.xs.child_sym(d, "name");
            let d_image = self.xs.child_sym(d, "image");
            let d_mem_target = self.xs.child_sym(self.xs.child_sym(d, "memory"), "target");
            let d_con_ring = self.xs.child_sym(self.xs.child_sym(d, "console"), "ring-ref");
            let d_devinit = self.xs.child_sym(d, "device-init");
            self.stormy_registration(cost, meter, "shell finalisation", |xs, cost, meter| {
                xs.transaction(cost, meter, 0, xsdev::TXN_RETRIES, |xs, cost, meter, id| {
                    xs.txn_write_s(cost, meter, 0, id, d_name, name.as_bytes())?;
                    xs.txn_write_s(cost, meter, 0, id, d_image, b"kernel")?;
                    xs.txn_write_s(cost, meter, 0, id, d_mem_target, b"mem")?;
                    xs.txn_write_s(cost, meter, 0, id, d_con_ring, b"1")?;
                    xs.txn_write_s(cost, meter, 0, id, d_devinit, b"done")
                })
            })?;
        } else {
            // Finalise device initialisation over the control pages.
            meter.charge(
                Category::Devices,
                cost.ctrl_page_exchange * (image.device_count().max(1)) as u64,
            );
        }
        Ok(())
    }

    /// Registration phase under fault injection: an injected daemon
    /// crash costs a restart + log replay before the phase runs (the
    /// toolstack's transaction died with the old daemon process and is
    /// simply re-issued); an injected transaction storm drives the
    /// store's conflict probability to `STORM_INTERFERENCE` for the
    /// duration of one attempt. The phase is retried with exponential
    /// backoff up to `FAULT_RETRIES` times before the create is
    /// abandoned. With an inactive plan this is exactly one plain
    /// attempt: no draws, no extra charges.
    fn stormy_registration(
        &mut self,
        cost: &CostModel,
        meter: &mut Meter,
        phase: &'static str,
        mut body: impl FnMut(&mut Xenstored, &CostModel, &mut Meter) -> Result<(), XsError>,
    ) -> Result<(), PlaneError> {
        if self.faults.should_inject(FaultSite::XsCrash) {
            self.xs.crash_and_restart(cost, meter);
        }
        for attempt in 0..=FAULT_RETRIES {
            let storm = self.faults.should_inject(FaultSite::TxnStorm);
            let saved = self.xs.ambient_interference();
            if storm {
                self.xs.set_ambient_interference(STORM_INTERFERENCE);
                self.xs.set_storm(true);
            }
            let result = body(&mut self.xs, cost, meter);
            if storm {
                self.xs.set_ambient_interference(saved);
                self.xs.set_storm(false);
            }
            match result {
                Ok(()) => return Ok(()),
                Err(XsError::Again) if attempt < FAULT_RETRIES => {
                    meter.charge(
                        Category::Xenstore,
                        FaultPlan::backoff(cost.fault_backoff_base, attempt),
                    );
                }
                Err(XsError::Again) => return Err(PlaneError::Timeout(phase)),
                Err(e) => return Err(e.into()),
            }
        }
        unreachable!("loop returns on its final attempt");
    }

    /// xl's unique-name check: list every domain and read its name.
    fn xl_name_check(
        &mut self,
        cost: &CostModel,
        meter: &mut Meter,
        name: &str,
    ) -> Result<(), PlaneError> {
        self.last_scan_replayed = false;
        if self.fast_name_scan && self.xl_name_check_replay(cost, meter, name) {
            self.last_scan_replayed = true;
            return Ok(());
        }
        let dir = self.xs.local_domain_sym();
        let mut entries = std::mem::take(&mut self.dir_scratch);
        match self.xs.directory_syms(cost, meter, 0, dir, &mut entries) {
            Ok(()) => {}
            Err(XsError::NotFound) => entries.clear(),
            Err(e) => {
                self.dir_scratch = entries;
                return Err(e.into());
            }
        }
        let mut taken = false;
        for &domain in &entries {
            if self.xs.sym_name_u32(domain).is_some() {
                let name_sym = self.xs.child_sym(domain, "name");
                if let Ok(existing) = self.xs.read_s(cost, meter, 0, name_sym) {
                    if &*existing == name.as_bytes() {
                        taken = true;
                        break;
                    }
                }
            }
        }
        self.dir_scratch = entries;
        if taken {
            return Err(PlaneError::NameTaken(name.to_string()));
        }
        Ok(())
    }

    /// Attempts the closed-form twin of `xl_name_check`: validates —
    /// without charging — that `/local/domain`'s children are exactly
    /// this plane's VM table (plus, possibly, Dom0's own directory,
    /// whose `name` node must be absent) and that no guest already has
    /// `name`; when they are, [`Xenstored::replay_name_scan`] charges
    /// precisely what the real scan would have and the store engine is
    /// never entered. Returns false on any mismatch — including a name
    /// collision, so the real scan reproduces `NameTaken` with its exact
    /// early-exit charges.
    fn xl_name_check_replay(&mut self, cost: &CostModel, meter: &mut Meter, name: &str) -> bool {
        let ld = self.xs.local_domain_sym();
        let mut children = std::mem::take(&mut self.scan_scratch);
        let shape_ok = match self.xs.probe_children_u32(ld, &mut children) {
            Ok(all_numeric) => all_numeric,
            // No `/local/domain` at all: the scan is one NotFound
            // directory request, which the empty closed form matches.
            Err(XsError::NotFound) => children.is_empty(),
            Err(_) => false,
        };
        let mut dom0_entry = false;
        let mut known = shape_ok;
        if known {
            for &c in &children {
                if c == 0 {
                    dom0_entry = true;
                } else if !self.vms.contains_key(&DomId(c)) {
                    known = false;
                    break;
                }
            }
            // Children are unique, so membership + matching count means
            // the sets are equal.
            known &= children.len() == self.vms.len() + dom0_entry as usize;
        }
        let replayable = known
            && (!dom0_entry || {
                let name_sym = self.xs.child_sym(self.xs.domain_dir_sym(0), "name");
                !self.xs.probe_exists(name_sym)
            })
            && !self.vms.values().any(|vm| vm.name == name);
        let scanned = children.len() as u64;
        self.scan_scratch = children;
        if !replayable {
            return false;
        }
        self.last_scan_saved = scanned + 1;
        self.xs.replay_name_scan(
            cost,
            meter,
            dom0_entry,
            self.vms.iter().map(|(d, vm)| (d.0, vm.name.len())),
        );
        true
    }

    /// Appends a phase breakpoint to the active trace, if any.
    pub(crate) fn trace_phase(&mut self, tag: &'static str, meter: &Meter) {
        if let Some(trace) = &mut self.phase_trace {
            trace.push((tag, meter.total()));
        }
    }

    /// Writes the domain's registration records (name, memory, console,
    /// /vm bookkeeping) in a transaction. xl writes the full set; chaos
    /// a lean subset.
    pub(crate) fn xs_register_domain(
        &mut self,
        cost: &CostModel,
        meter: &mut Meter,
        dom: DomId,
        name: &str,
    ) -> Result<(), PlaneError> {
        let full = self.mode == ToolstackMode::Xl;
        // Pre-intern the whole per-domain skeleton once; the transaction
        // body (including conflict retries) then allocates nothing.
        let d = self.xs.domain_dir_sym(dom.0);
        let d_name = self.xs.child_sym(d, "name");
        let d_domid = self.xs.child_sym(d, "domid");
        let d_memory = self.xs.child_sym(d, "memory");
        let d_mem_target = self.xs.child_sym(d_memory, "target");
        let d_console = self.xs.child_sym(d, "console");
        let d_con_ring = self.xs.child_sym(d_console, "ring-ref");
        let d_con_port = self.xs.child_sym(d_console, "port");
        let d_ctrl_shutdown = self.xs.control_shutdown_sym(dom.0);
        let mut dom_buf = [0u8; 10];
        let dom_s = u32_str(&mut dom_buf, dom.0);
        let full_syms = if full {
            let vm = self.xs.vm_dir_sym(dom.0);
            let d_store = self.xs.child_sym(d, "store");
            Some([
                self.xs.child_sym(vm, "uuid"),
                self.xs.child_sym(vm, "name"),
                self.xs.child_sym(self.xs.child_sym(vm, "image"), "ostype"),
                self.xs.child_sym(vm, "start_time"),
                self.xs.child_sym(d_memory, "static-max"),
                self.xs.child_sym(self.xs.child_sym(d, "cpu"), "0"),
                self.xs.child_sym(d_store, "ring-ref"),
                self.xs.child_sym(d_store, "port"),
            ])
        } else {
            None
        };
        self.stormy_registration(cost, meter, "domain registration", |xs, cost, meter| {
            xs.transaction(cost, meter, 0, xsdev::TXN_RETRIES, |xs, cost, meter, id| {
                xs.txn_write_s(cost, meter, 0, id, d_name, name.as_bytes())?;
                xs.txn_write_s(cost, meter, 0, id, d_domid, dom_s.as_bytes())?;
                xs.txn_write_s(cost, meter, 0, id, d_mem_target, b"mem")?;
                xs.txn_write_s(cost, meter, 0, id, d_con_ring, b"0")?;
                xs.txn_write_s(cost, meter, 0, id, d_con_port, b"0")?;
                xs.txn_write_s(cost, meter, 0, id, d_ctrl_shutdown, b"")?;
                if let Some([vm_uuid, vm_name, vm_ostype, vm_start, d_static_max, d_cpu0, d_store_ring, d_store_port]) = full_syms {
                    xs.txn_write_s(cost, meter, 0, id, vm_uuid, b"0000-0000")?;
                    xs.txn_write_s(cost, meter, 0, id, vm_name, name.as_bytes())?;
                    xs.txn_write_s(cost, meter, 0, id, vm_ostype, b"linux")?;
                    xs.txn_write_s(cost, meter, 0, id, vm_start, b"0")?;
                    xs.txn_write_s(cost, meter, 0, id, d_static_max, b"max")?;
                    xs.txn_write_s(cost, meter, 0, id, d_cpu0, b"online")?;
                    xs.txn_write_s(cost, meter, 0, id, d_store_ring, b"1")?;
                    xs.txn_write_s(cost, meter, 0, id, d_store_port, b"1")?;
                }
                Ok(())
            })
        })?;
        Ok(())
    }

    /// Lets the back-ends drain their shared watch queue (device
    /// allocation + hotplug). The `kind` argument documents what the
    /// caller just announced; dispatch is by event path.
    pub(crate) fn process_backend_events(
        &mut self,
        cost: &CostModel,
        meter: &mut Meter,
        kind: DeviceKind,
    ) -> Result<(), PlaneError> {
        // Not a swallowed error: `kind` exists to make call sites
        // self-describing (dispatch really is by event path).
        let _ = kind;
        let mut events = std::mem::take(&mut self.xs_events);
        let result = xsdev::backend_process_events(
            &mut self.xs, &mut self.hv,
            &mut [&mut self.net, &mut self.blk, &mut self.console],
            &mut self.switch, self.mode.hotplug(), cost, meter, &mut events,
            &mut self.faults,
        );
        self.xs_events = events;
        result?;
        Ok(())
    }

    /// Pre-fills the shell pool for an image flavor (what the chaos
    /// daemon does in the background before any create arrives).
    pub fn prewarm(&mut self, image: &GuestImage) {
        if self.mode.uses_split() {
            self.daemon_refill(image);
        }
    }

    /// Refills the shell pool (background work, not on the create path).
    fn daemon_refill(&mut self, image: &GuestImage) {
        let cost = self.cost();
        while self.daemon.len() < self.daemon.target {
            let mut m = Meter::new();
            match self.prepare_shell(&cost, &mut m, image) {
                Ok(shell) => {
                    self.daemon.put(shell);
                    // Background (daemon) work.
                    for (cat, dt) in m.iter() {
                        self.background_meter.charge(cat, dt);
                    }
                }
                // e.g. out of memory or an injected fault: the failed
                // prepare rolled itself back; stop this refill round.
                Err(_) => {
                    self.daemon.note_refill_failure();
                    break;
                }
            }
        }
    }

    /// Prepare phase (paper Figure 8, steps 1-5): hypervisor
    /// reservation, compute allocation, memory reservation and
    /// preparation, device pre-creation. A failed prepare rolls its
    /// half-built shell back instead of leaking the domain.
    fn prepare_shell(
        &mut self,
        cost: &CostModel,
        meter: &mut Meter,
        image: &GuestImage,
    ) -> Result<VmShell, PlaneError> {
        let dom = self.hv.create_domain(
            cost,
            meter,
            &DomainConfig {
                max_mem_mib: image.mem_mib,
                vcpus: 1,
            },
        )?;
        match self.prepare_shell_inner(cost, meter, dom, image) {
            Ok(()) => Ok(VmShell {
                dom,
                mem_mib: image.mem_mib,
                has_net: image.needs_net,
            }),
            Err(e) => {
                self.rollback_partial_create(cost, meter, dom, image);
                Err(e)
            }
        }
    }

    fn prepare_shell_inner(
        &mut self,
        cost: &CostModel,
        meter: &mut Meter,
        dom: DomId,
        image: &GuestImage,
    ) -> Result<(), PlaneError> {
        let mem = self.effective_mem_mib(image);
        self.hv.populate_physmap(cost, meter, dom, mem)?;
        if self.mode.uses_xenstore() {
            self.xs.connect(dom.0);
            self.xs_register_domain(cost, meter, dom, &format!("shell-{}", dom.0))?;
            for devid in net_ids(image) {
                let mac = Backend::mac_for(dom, devid);
                xsdev::toolstack_announce_device(
                    &mut self.xs, cost, meter, DeviceKind::Net, dom, devid, &mac,
                )?;
                self.process_backend_events(cost, meter, DeviceKind::Net)?;
            }
            if image.needs_console {
                xsdev::toolstack_announce_device(
                    &mut self.xs, cost, meter, DeviceKind::Console, dom, 0, "",
                )?;
                self.process_backend_events(cost, meter, DeviceKind::Console)?;
            }
        } else {
            noxs_driver::setup_device_page(&mut self.hv, cost, meter, dom)?;
            self.sysctl.setup(&mut self.hv, cost, meter, dom)?;
            for devid in net_ids(image) {
                noxs_driver::create_device(
                    &mut self.hv, &mut self.net, &mut self.switch, self.mode.hotplug(),
                    cost, meter, dom, devid, &mut self.faults,
                )?;
            }
            if image.needs_console {
                noxs_driver::create_device(
                    &mut self.hv, &mut self.console, &mut self.switch, self.mode.hotplug(),
                    cost, meter, dom, 0, &mut self.faults,
                )?;
            }
        }
        Ok(())
    }

    /// Compensating teardown for a create/prepare that failed after its
    /// domain existed. Undoes, in reverse creation order, everything the
    /// aborted create *may* have set up — backend devices, switch ports,
    /// store nodes and watches, the store connection, and the domain
    /// itself (whose destruction reaps memory, event channels, grants
    /// and the device page). Every step tolerates never-created state,
    /// so the host ends byte-for-byte where it started regardless of
    /// which phase failed.
    fn rollback_partial_create(
        &mut self,
        cost: &CostModel,
        meter: &mut Meter,
        dom: DomId,
        image: &GuestImage,
    ) {
        if self.mode.uses_xenstore() {
            // Absence errors are the expected no-op on every rollback
            // step below: the aborted create may have failed before
            // reaching the device/dir in question, so "already gone" is
            // normal. Anything else is counted — it may mask a leak.
            for devid in net_ids(image) {
                if let Err(e) = xsdev::destroy_device_via_xenstore(
                    &mut self.xs, &mut self.hv, &mut self.net, &mut self.switch,
                    self.mode.hotplug(), cost, meter, dom, devid,
                ) {
                    if !xsdev_err_is_absence(&e) {
                        self.teardown_errors.xsdev += 1;
                    }
                }
            }
            for devid in blk_ids(image) {
                if let Err(e) = xsdev::destroy_device_via_xenstore(
                    &mut self.xs, &mut self.hv, &mut self.blk, &mut self.switch,
                    self.mode.hotplug(), cost, meter, dom, devid,
                ) {
                    if !xsdev_err_is_absence(&e) {
                        self.teardown_errors.xsdev += 1;
                    }
                }
            }
            if image.needs_console {
                if let Err(e) = xsdev::destroy_device_via_xenstore(
                    &mut self.xs, &mut self.hv, &mut self.console, &mut self.switch,
                    self.mode.hotplug(), cost, meter, dom, 0,
                ) {
                    if !xsdev_err_is_absence(&e) {
                        self.teardown_errors.xsdev += 1;
                    }
                }
            }
            // `NotFound` is expected for both dirs: registration may not
            // have run at all, and `/vm/<d>` is only written by xl's
            // registration transaction in the first place.
            let d = self.xs.domain_dir_sym(dom.0);
            if let Err(e) = self.xs.rm_s(cost, meter, 0, d) {
                if e != XsError::NotFound {
                    self.teardown_errors.store_dirs += 1;
                }
            }
            let v = self.xs.vm_dir_sym(dom.0);
            if let Err(e) = self.xs.rm_s(cost, meter, 0, v) {
                if e != XsError::NotFound {
                    self.teardown_errors.store_dirs += 1;
                }
            }
            self.xs.disconnect(dom.0);
        } else {
            for devid in net_ids(image) {
                if let Err(e) = noxs_driver::destroy_device(
                    &mut self.hv, &mut self.net, &mut self.switch, self.mode.hotplug(),
                    cost, meter, dom, devid,
                ) {
                    if !noxs_err_is_absence(&e) {
                        self.teardown_errors.noxs += 1;
                    }
                }
            }
            if image.needs_console {
                if let Err(e) = noxs_driver::destroy_device(
                    &mut self.hv, &mut self.console, &mut self.switch, self.mode.hotplug(),
                    cost, meter, dom, 0,
                ) {
                    if !noxs_err_is_absence(&e) {
                        self.teardown_errors.noxs += 1;
                    }
                }
            }
            self.blk.drop_domain(dom);
            self.sysctl.drop_domain(dom);
        }
        self.switch.drop_domain(dom);
        // The domain exists on every path into rollback (it was created
        // first), so any destroy failure at all is anomalous.
        if self.hv.destroy(cost, meter, dom).is_err() {
            self.teardown_errors.hv_destroy += 1;
        }
    }

    // --- boot -----------------------------------------------------------------

    /// Boots a created VM: unpause, guest-side device connection, guest
    /// boot work under CPU contention. Returns the boot latency.
    pub fn boot_vm(&mut self, dom: DomId) -> Result<SimTime, PlaneError> {
        let cost = self.cost();
        let mut meter = Meter::new();
        let (image, core, net_devids, blk_devids) = {
            let vm = self.vms.get(&dom).ok_or(PlaneError::NoSuchVm)?;
            (
                vm.image.clone(),
                vm.core,
                vm.net_devids.clone(),
                vm.blk_devids.clone(),
            )
        };
        self.hv.unpause(&cost, &mut meter, dom)?;

        if self.mode.uses_xenstore() {
            // The guest registers its watches, then retrieves what the
            // back-end published and connects. Tokens are cached and
            // shared across guests (every guest names them the same way).
            let d = self.xs.domain_dir_sym(dom.0);
            while self.fe_tokens.len() < image.watches as usize {
                self.fe_tokens
                    .push(format!("fe-{}", self.fe_tokens.len()).into());
            }
            for w in 0..image.watches as usize {
                self.xs
                    .watch_s(&cost, &mut meter, dom.0, d, &self.fe_tokens[w]);
            }
            self.xs.drain_events(&cost, &mut meter, dom.0);
            if let Err(e) =
                self.connect_frontends(&cost, &mut meter, dom, &net_devids, &blk_devids, &image)
            {
                // Aborted boot: unregister the watches registered above
                // and drop any events they fired, so the watch table and
                // queues return to their pre-boot state. The domain
                // itself stays created; the caller decides its fate.
                for w in 0..image.watches as usize {
                    // These watches were registered a few lines up, so
                    // any unwatch failure at all is anomalous (a leaked
                    // watch-table entry).
                    if self
                        .xs
                        .unwatch_s(&cost, &mut meter, dom.0, d, &self.fe_tokens[w])
                        .is_err()
                    {
                        self.teardown_errors.unwatch += 1;
                    }
                }
                self.xs.drain_events(&cost, &mut meter, dom.0);
                return Err(e);
            }
        } else {
            noxs_driver::guest_connect_devices(
                &mut self.hv,
                &mut [&mut self.net, &mut self.blk, &mut self.console],
                &cost,
                &mut meter,
                dom,
                &mut self.faults,
            )?;
        }

        // Guest boot work under processor sharing on its core.
        let probe = self.cpu.add_finite(core, image.boot_work.max(1e-9));
        // Invariant: `add_finite` just inserted the probe, so it must
        // have a rate; a miss means CpuSim's bookkeeping is corrupt.
        let rate = self
            .cpu
            .rate_of(probe)
            .expect("CpuSim lost a finite task it just admitted");
        self.cpu.remove(probe);
        let peers = self.cpu.tasks_on_core(core);
        meter.charge(Category::Other, image.boot_latency(&cost, rate, peers));

        // The guest is now resident: register its idle churn.
        let bg = self.cpu.add_background(core, image.idle_demand);
        self.dom0_load_total += image.dom0_load;
        // Re-fetch fallibly: the connect phase above can in principle
        // tear state down, and a vanished record should surface as an
        // error, not a panic.
        let vm = Arc::make_mut(self.vms.get_mut(&dom).ok_or(PlaneError::NoSuchVm)?);
        vm.bg = Some(bg);
        if !vm.booted {
            self.booted_watches += image.watches;
        }
        vm.booted = true;
        self.refresh_interference();
        Ok(meter.total())
    }

    /// Front-end connection for every device of a booting guest; split
    /// out so `boot_vm` can unwind its watch registrations on failure.
    fn connect_frontends(
        &mut self,
        cost: &CostModel,
        meter: &mut Meter,
        dom: DomId,
        net_devids: &[u32],
        blk_devids: &[u32],
        image: &GuestImage,
    ) -> Result<(), PlaneError> {
        for &devid in net_devids {
            xsdev::frontend_connect_via_xenstore(
                &mut self.xs, &mut self.hv, &mut self.net, cost, meter, dom, devid,
                &mut self.faults,
            )?;
        }
        for &devid in blk_devids {
            xsdev::frontend_connect_via_xenstore(
                &mut self.xs, &mut self.hv, &mut self.blk, cost, meter, dom, devid,
                &mut self.faults,
            )?;
        }
        if image.needs_console {
            xsdev::frontend_connect_via_xenstore(
                &mut self.xs, &mut self.hv, &mut self.console, cost, meter, dom, 0,
                &mut self.faults,
            )?;
        }
        Ok(())
    }

    /// `create_vm` + `boot_vm`. A guest that created but failed to boot
    /// is torn down in full: the failure is recorded and the host keeps
    /// running, with nothing of the dead guest left behind.
    pub fn create_and_boot(
        &mut self,
        name: &str,
        image: &GuestImage,
    ) -> Result<(DomId, SimTime, SimTime), PlaneError> {
        let (report, boot) = self.create_and_boot_report(name, image)?;
        Ok((report.dom, report.total(), boot))
    }

    /// [`ControlPlane::create_and_boot`] keeping the full
    /// [`CreateReport`] (per-category breakdown) instead of just the
    /// create total.
    pub fn create_and_boot_report(
        &mut self,
        name: &str,
        image: &GuestImage,
    ) -> Result<(CreateReport, SimTime), PlaneError> {
        let report = self.create_vm(name, image)?;
        match self.boot_vm(report.dom) {
            Ok(boot) => Ok((report, boot)),
            Err(e) => {
                self.create_failures += 1;
                // The guest was fully created, so its teardown should
                // succeed outright; the boot failure is what we report,
                // but a destroy failure on top of it is counted.
                if self.destroy_vm(report.dom).is_err() {
                    self.teardown_errors.boot_unwind += 1;
                }
                Err(e)
            }
        }
    }

    // --- destroy --------------------------------------------------------------

    /// Destroys a VM, releasing everything. Returns the teardown latency.
    pub fn destroy_vm(&mut self, dom: DomId) -> Result<SimTime, PlaneError> {
        let cost = self.cost();
        let mut meter = Meter::new();
        let vm = self.vms.remove(&dom).ok_or(PlaneError::NoSuchVm)?;
        if let Some(n) = self.image_instances.get_mut(&vm.image.name) {
            *n = n.saturating_sub(1);
        }
        if let Some(bg) = vm.bg {
            self.cpu.remove(bg);
        }
        if vm.booted {
            self.dom0_load_total = (self.dom0_load_total - vm.image.dom0_load).max(0.0);
            self.booted_watches -= vm.image.watches;
        }
        if self.mode.uses_xenstore() {
            // The devids below were recorded when the create succeeded,
            // so the devices exist; still, an "already gone" error
            // cannot mask a leak (there is nothing left to free), so
            // only non-absence errors are counted.
            for devid in &vm.net_devids {
                if let Err(e) = xsdev::destroy_device_via_xenstore(
                    &mut self.xs, &mut self.hv, &mut self.net, &mut self.switch,
                    self.mode.hotplug(), &cost, &mut meter, dom, *devid,
                ) {
                    if !xsdev_err_is_absence(&e) {
                        self.teardown_errors.xsdev += 1;
                    }
                }
            }
            for devid in &vm.blk_devids {
                if let Err(e) = xsdev::destroy_device_via_xenstore(
                    &mut self.xs, &mut self.hv, &mut self.blk, &mut self.switch,
                    self.mode.hotplug(), &cost, &mut meter, dom, *devid,
                ) {
                    if !xsdev_err_is_absence(&e) {
                        self.teardown_errors.xsdev += 1;
                    }
                }
            }
            if vm.image.needs_console {
                if let Err(e) = xsdev::destroy_device_via_xenstore(
                    &mut self.xs, &mut self.hv, &mut self.console, &mut self.switch,
                    self.mode.hotplug(), &cost, &mut meter, dom, 0,
                ) {
                    if !xsdev_err_is_absence(&e) {
                        self.teardown_errors.xsdev += 1;
                    }
                }
            }
            let d = self.xs.domain_dir_sym(dom.0);
            if let Err(e) = self.xs.rm_s(&cost, &mut meter, 0, d) {
                if e != XsError::NotFound {
                    self.teardown_errors.store_dirs += 1;
                }
            }
            // `/vm/<d>` only exists in Xl mode (chaos's registration
            // writes `/local/domain/<d>` alone), so `NotFound` here is
            // the expected no-op for the chaos [XS] modes.
            let v = self.xs.vm_dir_sym(dom.0);
            if let Err(e) = self.xs.rm_s(&cost, &mut meter, 0, v) {
                if e != XsError::NotFound {
                    self.teardown_errors.store_dirs += 1;
                }
            }
            self.xs.disconnect(dom.0);
        } else {
            for devid in &vm.net_devids {
                if let Err(e) = noxs_driver::destroy_device(
                    &mut self.hv, &mut self.net, &mut self.switch, self.mode.hotplug(),
                    &cost, &mut meter, dom, *devid,
                ) {
                    if !noxs_err_is_absence(&e) {
                        self.teardown_errors.noxs += 1;
                    }
                }
            }
            if vm.image.needs_console {
                if let Err(e) = noxs_driver::destroy_device(
                    &mut self.hv, &mut self.console, &mut self.switch, self.mode.hotplug(),
                    &cost, &mut meter, dom, 0,
                ) {
                    if !noxs_err_is_absence(&e) {
                        self.teardown_errors.noxs += 1;
                    }
                }
            }
            self.blk.drop_domain(dom);
            self.sysctl.drop_domain(dom);
        }
        self.hv.destroy(&cost, &mut meter, dom)?;
        self.refresh_interference();
        Ok(meter.total())
    }
}

fn net_ids(image: &GuestImage) -> Vec<u32> {
    if image.needs_net {
        vec![0]
    } else {
        Vec::new()
    }
}

fn blk_ids(image: &GuestImage) -> Vec<u32> {
    if image.needs_block {
        vec![0]
    } else {
        Vec::new()
    }
}
