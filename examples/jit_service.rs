//! Use case §7.2: just-in-time service instantiation.
//!
//! A VM is booted on the first packet from each new client; the
//! worst-case client-perceived latency is a ping answered by a VM that
//! did not exist when the ping left the client.
//!
//! Run with: `cargo run --release --example jit_service`

use lightvm::metrics::Cdf;
use lightvm::usecases::jit::{self, JitConfig};

fn main() {
    println!("{:>14} {:>10} {:>10} {:>10} {:>8} {:>9}",
        "inter-arrival", "median ms", "p90 ms", "p99 ms", "drops", "peak VMs");
    for (ms, seed) in [(100u64, 4u64), (50, 3), (25, 2), (10, 1)] {
        let r = jit::run(&JitConfig::paper(ms, seed));
        let samples: Vec<f64> = r.rtts.iter().map(|t| t.as_millis_f64()).collect();
        let cdf = Cdf::of(&samples).expect("has samples");
        println!(
            "{:>11} ms {:>10.1} {:>10.1} {:>10.1} {:>8} {:>9}",
            ms,
            cdf.percentile(50.0),
            cdf.percentile(90.0),
            cdf.percentile(99.0),
            r.drops,
            r.peak_vms
        );
    }
    println!("\nAt one client every 10 ms the Linux bridge's broadcast path");
    println!("overloads and drops ARP packets: some pings wait for the 1 s");
    println!("retry, producing the long tail of Figure 16b.");
}
