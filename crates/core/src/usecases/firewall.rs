//! Personal firewalls at the mobile edge (paper §7.1, Figure 16a).
//!
//! Each mobile user gets a ClickOS firewall VM on the MEC machine; we
//! boot the fleet through the LightVM control plane and evaluate the
//! data path with the fluid model of [`lvnet::FirewallFleet`]: linear
//! growth to 2.5 Gbps at 250 clients, CPU-bound beyond, with scheduler
//! queueing inflating RTT to ~60 ms at 1,000 active users.

use guests::GuestImage;
use lvnet::FirewallFleet;
use simcore::{MachinePreset, SimTime};
use toolstack::ToolstackMode;

use crate::host::Host;

/// One measurement point of the firewall experiment.
#[derive(Clone, Debug)]
pub struct FirewallPoint {
    /// Active users (each with a dedicated firewall VM).
    pub users: usize,
    /// Aggregate throughput, Gbps.
    pub total_gbps: f64,
    /// Average per-user throughput, Mbps.
    pub per_user_mbps: f64,
    /// Ping RTT including scheduler queueing, ms.
    pub rtt_ms: f64,
}

/// Result of the firewall experiment.
#[derive(Clone, Debug)]
pub struct FirewallResult {
    /// Points, one per requested fleet size.
    pub points: Vec<FirewallPoint>,
    /// Time to boot the largest fleet's last VM (ms).
    pub last_boot_ms: f64,
    /// Number of firewall VMs actually booted.
    pub booted: usize,
}

/// Runs the experiment for the given fleet sizes (paper: 1..=1000 on the
/// 14-core Xeon E5-2690 v4).
pub fn run(seed: u64, fleet_sizes: &[usize]) -> FirewallResult {
    let max = fleet_sizes.iter().copied().max().unwrap_or(0);
    let mut host = Host::new(
        MachinePreset::XeonE5_2690V4,
        2,
        ToolstackMode::LightVm,
        seed,
    );
    let image = GuestImage::clickos_firewall();
    host.prewarm(&image);
    let mut last_boot = SimTime::ZERO;
    for _ in 0..max {
        let vm = host.launch_auto(&image).expect("firewall fleet boots");
        last_boot = vm.create_time + vm.boot_time;
    }

    let fleet = FirewallFleet::paper_setup();
    let points = fleet_sizes
        .iter()
        .map(|&users| FirewallPoint {
            users,
            total_gbps: fleet.total_throughput_bps(users) / 1e9,
            per_user_mbps: fleet.per_client_bps(users) / 1e6,
            rtt_ms: fleet.added_rtt(users).as_millis_f64(),
        })
        .collect();
    FirewallResult {
        points,
        last_boot_ms: last_boot.as_millis_f64(),
        booted: max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_16a_shape() {
        let r = run(7, &[1, 100, 250, 500, 1000]);
        assert_eq!(r.booted, 1000);
        let by_users = |u: usize| r.points.iter().find(|p| p.users == u).unwrap();
        // Linear region: 250 users get the full 10 Mbps each.
        assert!((by_users(250).total_gbps - 2.5).abs() < 0.05);
        assert!((by_users(250).per_user_mbps - 10.0).abs() < 0.1);
        // CPU-bound region.
        assert!(by_users(500).per_user_mbps < 8.0);
        assert!((3.3..4.8).contains(&by_users(1000).per_user_mbps));
        // RTT inflation.
        assert!(by_users(100).rtt_ms < 10.0);
        assert!((50.0..75.0).contains(&by_users(1000).rtt_ms));
    }

    #[test]
    fn firewall_vms_boot_in_about_10ms() {
        let r = run(8, &[50]);
        assert!(
            (3.0..20.0).contains(&r.last_boot_ms),
            "ClickOS boot took {} ms",
            r.last_boot_ms
        );
    }
}
