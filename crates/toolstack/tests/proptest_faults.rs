//! Property tests of the fault-injection plan and compensating teardown
//! (DESIGN.md § Fault model): for every injection site, a failed create
//! rolls the world back byte-for-byte, a successful create is fully
//! undone by destroy, and identical seeds yield identical artefacts.
//!
//! Randomness comes from the workspace's own seeded `SimRng`-backed
//! `FaultPlan` (the build environment is offline, so no proptest), with
//! fixed seeds per case: failures reproduce exactly.

use guests::GuestImage;
use simcore::faults::{FaultPlan, FaultSite};
use simcore::{Machine, MachinePreset};
use toolstack::plane::{ControlPlane, ToolstackMode};

fn plane(mode: ToolstackMode) -> ControlPlane {
    ControlPlane::new(Machine::preset(MachinePreset::XeonE5_1630V3), 1, mode, 42)
}

/// One full scenario: boot a healthy resident VM, snapshot the world,
/// then attempt a victim create with certain injection at `site`.
/// Whatever the outcome, the world must return to the snapshot — via
/// compensating rollback on failure, or via destroy on success (sites
/// that only add latency, or that the mode never exercises). Returns
/// the outcome string and the final digest for determinism checks.
///
/// Digests use the fast incremental path with the Dom0 drain
/// (`world_digest64`, not the at-rest variant): a rolled-back create
/// fires extra Dom0 watch events on the way down, so only drained
/// worlds compare like with like here.
fn run_case(mode: ToolstackMode, site: FaultSite, seed: u64) -> (String, u128) {
    let mut cp = plane(mode);
    let img = GuestImage::unikernel_daytime();
    cp.prewarm(&img);
    cp.create_and_boot("resident", &img)
        .expect("fault-free resident VM boots");
    let before = cp.world_digest64();

    cp.set_fault_plan(FaultPlan::at_site(seed, site));
    let outcome = match cp.create_and_boot("victim", &img) {
        Ok((dom, create, boot)) => {
            cp.destroy_vm(dom).expect("victim destroy succeeds");
            format!("ok dom={} create={create} boot={boot}", dom.0)
        }
        Err(e) => {
            assert!(
                cp.create_failures() >= 1,
                "{mode:?}/{}: failure not recorded",
                site.name()
            );
            format!("err {e:?}")
        }
    };
    cp.set_fault_plan(FaultPlan::none());
    // A split-mode daemon may have aborted (and rolled back) a shell
    // refill under injection, leaving the pool legitimately one short;
    // top it back up fault-free so the snapshots compare like with like.
    cp.prewarm(&img);

    let after = cp.world_digest64();
    assert_eq!(
        before,
        after,
        "{mode:?}/{} seed {seed}: leaked state after `{outcome}`",
        site.name()
    );
    (outcome, after)
}

/// Every injection site, in every representative mode, with several
/// seeds: no leaks, and the resident VM is untouched by its neighbour's
/// failure.
#[test]
fn injection_at_every_site_leaves_no_leaks() {
    for mode in [
        ToolstackMode::Xl,
        ToolstackMode::ChaosXs,
        ToolstackMode::ChaosNoxs,
        ToolstackMode::LightVm,
    ] {
        for site in FaultSite::ALL {
            for seed in [1, 7, 0xfa17] {
                run_case(mode, site, seed);
            }
        }
    }
}

/// Identical seeds yield identical artefacts: same outcome (including
/// the exact error and charged times) and same final digest.
#[test]
fn identical_seeds_give_identical_artefacts() {
    for mode in [ToolstackMode::ChaosXs, ToolstackMode::LightVm] {
        for site in FaultSite::ALL {
            let a = run_case(mode, site, 0xdead);
            let b = run_case(mode, site, 0xdead);
            assert_eq!(a, b, "{mode:?}/{} replay diverged", site.name());
        }
    }
}

/// Sites with guaranteed-fatal semantics do fail at rate 1.0 in the
/// modes that exercise them — the no-leak property above is vacuous if
/// rollback never runs.
#[test]
fn fatal_sites_actually_fail() {
    let fatal_xs = [
        FaultSite::TxnStorm,
        FaultSite::HotplugTimeout,
        FaultSite::XenbusStall,
        FaultSite::BackendRefusal,
    ];
    for site in fatal_xs {
        let (outcome, _) = run_case(ToolstackMode::ChaosXs, site, 3);
        assert!(outcome.starts_with("err"), "chaos[XS]/{}: {outcome}", site.name());
    }
    // ChaosNoxs creates domains directly, so device-path sites are hit
    // on the victim's own create/boot.
    for site in [
        FaultSite::HotplugTimeout,
        FaultSite::XenbusStall,
        FaultSite::BackendRefusal,
    ] {
        let (outcome, _) = run_case(ToolstackMode::ChaosNoxs, site, 3);
        assert!(outcome.starts_with("err"), "chaos[NoXS]/{}: {outcome}", site.name());
    }
    // In LightVm the victim still connects its frontends at boot, so the
    // xenbus-stall site fails it there.
    let (outcome, _) = run_case(ToolstackMode::LightVm, FaultSite::XenbusStall, 3);
    assert!(outcome.starts_with("err"), "lightvm/xenbus-stall: {outcome}");
    // Store-side sites never touch a noxs-mode host; and the remaining
    // create-path sites land on the daemon's pool refill (recorded
    // there), not on the victim, which is finished from a healthy
    // pre-warmed shell.
    for site in [
        FaultSite::XsCrash,
        FaultSite::TxnStorm,
        FaultSite::HotplugTimeout,
        FaultSite::BackendRefusal,
    ] {
        let (outcome, _) = run_case(ToolstackMode::LightVm, site, 3);
        assert!(outcome.starts_with("ok"), "lightvm/{}: {outcome}", site.name());
    }
}
