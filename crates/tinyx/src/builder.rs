//! The Tinyx image builder: overlay assembly over a BusyBox underlay.

use std::collections::BTreeSet;

use crate::kernel::{KernelBuilder, KernelImage, Platform};
use crate::packages::{PackageDb, ResolveError};

const KIB: u64 = 1 << 10;
const MIB: u64 = 1 << 20;

/// Fraction of installed bytes reclaimed by stripping caches, dpkg/apt
/// state and documentation before unmounting the overlay.
const CACHE_STRIP_FRACTION: f64 = 0.12;

/// Size of the BusyBox init glue script.
const INIT_GLUE: u64 = 4 * KIB;

/// Userspace runtime working set beyond kernel + unpacked initramfs.
const RUNTIME_OVERHEAD: u64 = 20 * MIB;

/// A built Tinyx VM image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TinyxImage {
    /// Application the image was built for.
    pub app: String,
    /// Kernel image bytes.
    pub kernel_bytes: u64,
    /// Initramfs (distribution) bytes.
    pub initramfs_bytes: u64,
    /// Runtime kernel memory bytes.
    pub kernel_ram_bytes: u64,
    /// RAM needed to boot and run, bytes.
    pub boot_ram_bytes: u64,
}

impl TinyxImage {
    /// Total on-disk size: the distribution is bundled into the kernel
    /// image as an initramfs (paper §4.2).
    pub fn total_bytes(&self) -> u64 {
        self.kernel_bytes + self.initramfs_bytes
    }
}

/// What the build did (for inspection and tests).
#[derive(Clone, Debug)]
pub struct BuildReport {
    /// Packages installed into the overlay.
    pub packages: Vec<String>,
    /// Packages excluded by the blacklist.
    pub blacklisted: Vec<String>,
    /// The minimised kernel.
    pub kernel: KernelImage,
    /// Kernel options removed by the minimisation loop.
    pub options_removed: usize,
    /// Rebuild+boot tests the minimisation ran.
    pub boot_tests: usize,
}

/// The Tinyx build system.
pub struct TinyxBuilder {
    db: PackageDb,
    platform: Platform,
    blacklist: BTreeSet<&'static str>,
    whitelist: Vec<&'static str>,
}

impl TinyxBuilder {
    /// Creates a builder for a platform with the default blacklist:
    /// installation machinery that dependency analysis would drag in but
    /// that is not needed at runtime (BusyBox stands in for the shell and
    /// core utilities).
    pub fn new(platform: Platform) -> TinyxBuilder {
        TinyxBuilder {
            db: PackageDb::standard(),
            platform,
            blacklist: [
                "dpkg",
                "apt",
                "tar",
                "perl-base",
                "debconf",
                "bash",
                "coreutils",
            ]
            .into_iter()
            .collect(),
            whitelist: Vec::new(),
        }
    }

    /// Adds a package the user wants regardless of dependency analysis.
    pub fn whitelist(&mut self, pkg: &'static str) -> &mut TinyxBuilder {
        self.whitelist.push(pkg);
        self
    }

    /// Adds a package to the blacklist.
    pub fn blacklist(&mut self, pkg: &'static str) -> &mut TinyxBuilder {
        self.blacklist.insert(pkg);
        self
    }

    /// Read-only package database access.
    pub fn db(&self) -> &PackageDb {
        &self.db
    }

    /// Builds a Tinyx image for `app_name`.
    pub fn build(&self, app_name: &str) -> Result<(TinyxImage, BuildReport), ResolveError> {
        let app = self.db.app(app_name)?;

        // 1. Dependency discovery: objdump for libraries, plus the app's
        //    own package when it is distributed as one.
        let mut roots: BTreeSet<&'static str> = self.db.objdump_deps(app)?;
        if self.db.package(app.name).is_some() {
            roots.insert(app.name);
        }
        for w in &self.whitelist {
            roots.insert(w);
        }

        // 2. Package-manager closure.
        let closure = self.db.closure(roots.iter().copied())?;

        // 3. Blacklist filter.
        let (selected, blacklisted): (BTreeSet<&'static str>, BTreeSet<&'static str>) =
            closure.into_iter().partition(|p| !self.blacklist.contains(p));

        // 4. Overlay assembly: install into the overlay, strip caches,
        //    merge onto the BusyBox underlay, add the init glue.
        let installed = self.db.total_size(&selected);
        let stripped = (installed as f64 * (1.0 - CACHE_STRIP_FRACTION)) as u64;
        let busybox = self
            .db
            .package("busybox")
            .expect("busybox is always in the repo")
            .size;
        let initramfs = stripped
            + if selected.contains("busybox") { 0 } else { busybox }
            + INIT_GLUE;

        // 5. Kernel minimisation.
        let mut kb = KernelBuilder::debian_default(self.platform);
        let candidates: Vec<&'static str> =
            kb.config().options().copied().collect();
        let options_removed = kb.minimize(app, &candidates);
        let kernel = kb.build();

        let boot_ram = kernel.ram + 2 * initramfs + RUNTIME_OVERHEAD;
        let image = TinyxImage {
            app: app.name.to_string(),
            kernel_bytes: kernel.size,
            initramfs_bytes: initramfs,
            kernel_ram_bytes: kernel.ram,
            boot_ram_bytes: boot_ram,
        };
        let report = BuildReport {
            packages: selected.iter().map(|s| s.to_string()).collect(),
            blacklisted: blacklisted.iter().map(|s| s.to_string()).collect(),
            kernel,
            options_removed,
            boot_tests: kb.boot_tests_run,
        };
        Ok((image, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nginx_image_is_a_few_tens_of_mb_at_most() {
        let (img, report) = TinyxBuilder::new(Platform::Xen).build("nginx").unwrap();
        // Paper: Tinyx images are ~10 MB, need ~30 MB of RAM.
        assert!(
            img.total_bytes() > 5 * MIB && img.total_bytes() < 20 * MIB,
            "image size {}",
            img.total_bytes()
        );
        assert!(
            img.boot_ram_bytes > 20 * MIB && img.boot_ram_bytes < 60 * MIB,
            "boot ram {}",
            img.boot_ram_bytes
        );
        assert!(report.packages.contains(&"nginx".to_string()));
        assert!(report.packages.contains(&"libssl1.0".to_string()));
    }

    #[test]
    fn blacklist_excludes_install_machinery() {
        let mut b = TinyxBuilder::new(Platform::Xen);
        b.whitelist("python3-minimal"); // drags a big closure
        let (_, report) = b.build("nginx").unwrap();
        for banned in ["dpkg", "apt", "perl-base"] {
            assert!(
                !report.packages.contains(&banned.to_string()),
                "{banned} must not be installed"
            );
        }
    }

    #[test]
    fn whitelist_forces_inclusion() {
        let mut b = TinyxBuilder::new(Platform::Xen);
        b.whitelist("iperf");
        let (_, report) = b.build("micropython").unwrap();
        assert!(report.packages.contains(&"iperf".to_string()));
        // And its closure came along.
        assert!(report.packages.contains(&"libstdcpp6".to_string()));
    }

    #[test]
    fn noop_image_is_nearly_just_busybox_and_kernel() {
        let (img, report) = TinyxBuilder::new(Platform::Xen).build("noop").unwrap();
        assert!(img.initramfs_bytes < 2 * MIB, "initramfs {}", img.initramfs_bytes);
        assert!(report.packages.is_empty());
        assert!(img.total_bytes() < 4 * MIB);
    }

    #[test]
    fn kernel_minimisation_ran() {
        let (_, report) = TinyxBuilder::new(Platform::Xen).build("nginx").unwrap();
        assert!(report.options_removed >= 5);
        assert!(report.boot_tests >= report.options_removed);
    }

    #[test]
    fn images_are_deterministic() {
        let a = TinyxBuilder::new(Platform::Xen).build("nginx").unwrap().0;
        let b = TinyxBuilder::new(Platform::Xen).build("nginx").unwrap().0;
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_app_is_an_error() {
        assert!(TinyxBuilder::new(Platform::Xen).build("emacs").is_err());
    }
}
