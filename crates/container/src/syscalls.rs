//! The unrelenting growth of the Linux syscall API (Figure 1).
//!
//! "Linux, for instance, has 400 different system calls, most with
//! multiple parameters and many with overlapping functionality; moreover,
//! the number of syscalls is constantly increasing" (paper §1). The
//! counts below track the x86_32 syscall table across representative
//! releases; the exact per-release values are approximate, the monotone
//! growth and range (≈230 → ≈390) match the paper's figure.

/// One release point of the syscall-count history.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SyscallRelease {
    /// Release year.
    pub year: u32,
    /// Kernel version string.
    pub version: &'static str,
    /// Number of entries in the x86_32 syscall table.
    pub syscalls: u32,
}

/// The x86_32 syscall-count history from 2002 to 2018.
pub fn syscall_history() -> &'static [SyscallRelease] {
    &[
        SyscallRelease { year: 2002, version: "2.4.19", syscalls: 239 },
        SyscallRelease { year: 2003, version: "2.6.0", syscalls: 274 },
        SyscallRelease { year: 2004, version: "2.6.9", syscalls: 291 },
        SyscallRelease { year: 2006, version: "2.6.16", syscalls: 311 },
        SyscallRelease { year: 2008, version: "2.6.25", syscalls: 327 },
        SyscallRelease { year: 2010, version: "2.6.33", syscalls: 338 },
        SyscallRelease { year: 2012, version: "3.3", syscalls: 349 },
        SyscallRelease { year: 2014, version: "3.14", syscalls: 354 },
        SyscallRelease { year: 2016, version: "4.8", syscalls: 379 },
        SyscallRelease { year: 2018, version: "4.17", syscalls: 387 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_is_monotone() {
        let h = syscall_history();
        for w in h.windows(2) {
            assert!(w[1].year > w[0].year);
            assert!(w[1].syscalls > w[0].syscalls, "{:?}", w);
        }
    }

    #[test]
    fn range_matches_figure_one() {
        let h = syscall_history();
        assert!(h.first().unwrap().syscalls >= 200);
        assert!(h.last().unwrap().syscalls <= 400);
        assert!(h.last().unwrap().syscalls - h.first().unwrap().syscalls > 100);
    }

    #[test]
    fn covers_the_figure_x_axis() {
        let h = syscall_history();
        assert_eq!(h.first().unwrap().year, 2002);
        assert_eq!(h.last().unwrap().year, 2018);
    }
}
