//! XenStore path handling.

use std::fmt;

use crate::store::XsError;

/// A validated, absolute XenStore path (e.g. `/local/domain/3/name`).
///
/// Paths are `/`-separated; components may contain alphanumerics and
/// `-_@:.`, matching what xenstored accepts in practice.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct XsPath {
    // Stored without a trailing slash; root is "/".
    raw: String,
}

impl XsPath {
    /// The root path `/`.
    pub fn root() -> XsPath {
        XsPath { raw: "/".into() }
    }

    /// Parses and validates a path.
    pub fn parse(s: &str) -> Result<XsPath, XsError> {
        if s.is_empty() || !s.starts_with('/') {
            return Err(XsError::Invalid);
        }
        if s == "/" {
            return Ok(XsPath::root());
        }
        if s.ends_with('/') {
            return Err(XsError::Invalid);
        }
        for comp in s[1..].split('/') {
            if comp.is_empty() || !comp.bytes().all(valid_byte) {
                return Err(XsError::Invalid);
            }
        }
        Ok(XsPath { raw: s.to_string() })
    }

    /// The path string.
    pub fn as_str(&self) -> &str {
        &self.raw
    }

    /// Path components (empty for root).
    pub fn components(&self) -> Vec<&str> {
        if self.raw == "/" {
            Vec::new()
        } else {
            self.raw[1..].split('/').collect()
        }
    }

    /// Number of components (depth); root is 0.
    pub fn depth(&self) -> usize {
        self.components().len()
    }

    /// Appends a child component.
    pub fn child(&self, comp: &str) -> Result<XsPath, XsError> {
        if comp.is_empty() || !comp.bytes().all(valid_byte) {
            return Err(XsError::Invalid);
        }
        let raw = if self.raw == "/" {
            format!("/{comp}")
        } else {
            format!("{}/{comp}", self.raw)
        };
        Ok(XsPath { raw })
    }

    /// The parent path; root's parent is root.
    pub fn parent(&self) -> XsPath {
        match self.raw.rfind('/') {
            Some(0) | None => XsPath::root(),
            Some(idx) => XsPath {
                raw: self.raw[..idx].to_string(),
            },
        }
    }

    /// True if `self` equals `other` or is a descendant of it.
    pub fn is_self_or_descendant_of(&self, other: &XsPath) -> bool {
        if other.raw == "/" {
            return true;
        }
        self.raw == other.raw
            || (self.raw.starts_with(&other.raw)
                && self.raw.as_bytes().get(other.raw.len()) == Some(&b'/'))
    }

    /// Length in bytes (used for payload costing).
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// Paths are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

fn valid_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'@' | b':' | b'.')
}

impl fmt::Display for XsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.raw)
    }
}

impl fmt::Debug for XsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XsPath({})", self.raw)
    }
}

/// Conventional Xen store layout helpers (paths used by the toolstack).
pub mod layout {
    use super::XsPath;

    /// `/local/domain/<domid>`.
    pub fn domain_dir(domid: u32) -> XsPath {
        XsPath::parse(&format!("/local/domain/{domid}")).expect("static path is valid")
    }

    /// `/local/domain/<domid>/name`.
    pub fn domain_name(domid: u32) -> XsPath {
        XsPath::parse(&format!("/local/domain/{domid}/name")).expect("static path is valid")
    }

    /// `/local/domain/<backend_domid>/backend/<kind>/<domid>/<devid>`.
    pub fn backend_dir(backend: u32, kind: &str, domid: u32, devid: u32) -> XsPath {
        XsPath::parse(&format!(
            "/local/domain/{backend}/backend/{kind}/{domid}/{devid}"
        ))
        .expect("static path is valid")
    }

    /// `/local/domain/<domid>/device/<kind>/<devid>`.
    pub fn frontend_dir(domid: u32, kind: &str, devid: u32) -> XsPath {
        XsPath::parse(&format!("/local/domain/{domid}/device/{kind}/{devid}"))
            .expect("static path is valid")
    }

    /// `/local/domain/<domid>/control/shutdown`.
    pub fn control_shutdown(domid: u32) -> XsPath {
        XsPath::parse(&format!("/local/domain/{domid}/control/shutdown"))
            .expect("static path is valid")
    }

    /// `/vm/<uuid-ish>` bookkeeping directory.
    pub fn vm_dir(domid: u32) -> XsPath {
        XsPath::parse(&format!("/vm/{domid}")).expect("static path is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_valid_paths() {
        for p in ["/", "/local", "/local/domain/0", "/a/b-c/d_e/f@1:2.3"] {
            assert!(XsPath::parse(p).is_ok(), "{p} should parse");
        }
    }

    #[test]
    fn parse_rejects_invalid_paths() {
        for p in ["", "a/b", "/a/", "/a//b", "/a b", "/a\n", "/ä"] {
            assert_eq!(XsPath::parse(p).unwrap_err(), XsError::Invalid, "{p:?}");
        }
    }

    #[test]
    fn parent_and_child_are_inverse() {
        let p = XsPath::parse("/local/domain/7").unwrap();
        assert_eq!(p.parent().as_str(), "/local/domain");
        assert_eq!(p.parent().child("7").unwrap(), p);
        assert_eq!(XsPath::parse("/a").unwrap().parent(), XsPath::root());
        assert_eq!(XsPath::root().parent(), XsPath::root());
    }

    #[test]
    fn descendant_checks() {
        let root = XsPath::root();
        let a = XsPath::parse("/a").unwrap();
        let ab = XsPath::parse("/a/b").unwrap();
        let axb = XsPath::parse("/ax/b").unwrap();
        assert!(ab.is_self_or_descendant_of(&a));
        assert!(ab.is_self_or_descendant_of(&root));
        assert!(a.is_self_or_descendant_of(&a));
        assert!(!a.is_self_or_descendant_of(&ab));
        assert!(!axb.is_self_or_descendant_of(&a), "prefix must respect separators");
    }

    #[test]
    fn components_and_depth() {
        assert_eq!(XsPath::root().depth(), 0);
        let p = XsPath::parse("/local/domain/3/name").unwrap();
        assert_eq!(p.components(), vec!["local", "domain", "3", "name"]);
        assert_eq!(p.depth(), 4);
    }

    #[test]
    fn layout_paths_parse() {
        assert_eq!(layout::domain_dir(3).as_str(), "/local/domain/3");
        assert_eq!(
            layout::backend_dir(0, "vif", 5, 0).as_str(),
            "/local/domain/0/backend/vif/5/0"
        );
        assert_eq!(
            layout::frontend_dir(5, "vif", 0).as_str(),
            "/local/domain/5/device/vif/0"
        );
    }
}
