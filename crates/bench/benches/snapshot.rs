//! Fork cost vs boot-from-scratch cost at 10/100/1000 guests, per
//! toolstack mode — the microbench behind the world snapshot cache
//! (DESIGN.md §6e): a fork is a structure-sharing clone, so it should
//! be orders of magnitude cheaper than re-simulating the boots it
//! replaces, and the gap should widen with density.
//!
//! Results are recorded in `results/bench_micro_pr5.md`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use guests::GuestImage;
use simcore::{Machine, MachinePreset};
use toolstack::{ControlPlane, ToolstackMode};

const MODES: [ToolstackMode; 3] = [
    ToolstackMode::Xl,
    ToolstackMode::ChaosXs,
    ToolstackMode::LightVm,
];

fn booted(mode: ToolstackMode, n: usize) -> ControlPlane {
    let img = GuestImage::unikernel_daytime();
    let mut cp = ControlPlane::new(Machine::preset(MachinePreset::XeonE5_1630V3), 1, mode, 42);
    cp.prewarm(&img);
    for i in 0..n {
        cp.create_and_boot(&format!("{}-{i}", img.name), &img)
            .expect("bench boot");
    }
    cp
}

fn bench_fork_vs_boot(c: &mut Criterion) {
    // Keep the from-scratch side tractable in quick/CI runs.
    let counts: &[usize] = if std::env::var_os("LIGHTVM_BENCH_QUICK").is_some() {
        &[10, 100]
    } else {
        &[10, 100, 1000]
    };
    for mode in MODES {
        let mut group = c.benchmark_group(format!("snapshot_{}", mode.label()));
        for &n in counts {
            let world = booted(mode, n);
            let snap = world.snapshot();
            group.bench_function(format!("fork_{n}"), |b| {
                b.iter(|| black_box(snap.fork().running_count()))
            });
            group.bench_function(format!("boot_from_scratch_{n}"), |b| {
                b.iter(|| black_box(booted(mode, n).running_count()))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fork_vs_boot);
criterion_main!(benches);
