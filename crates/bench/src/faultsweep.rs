//! Fault-injection sweep: control-plane resilience under deterministic
//! faults (see DESIGN.md § Fault model).
//!
//! Sweeps the seeded fault rate against creation latency and success
//! rate for three representative toolstacks (xl, chaos [XS], LightVM).
//! Every injected failure is survived: the affected create rolls back
//! and is recorded per-domain while the other guests keep booting — the
//! process never panics. A per-site unit additionally drives each named
//! injection site at rate 1.0 to show which phases abort a create
//! outright and which only add retry latency.
//!
//! Determinism contract: the plan is seeded, so identical seeds produce
//! byte-identical artefacts; at rate 0 the plan never touches its RNG
//! and the run is byte-identical to a fault-free one (`ci.sh` gates
//! both properties).

use guests::GuestImage;
use metrics::{Series, Summary};
use simcore::{FaultPlan, FaultSite, Machine, MachinePreset};
use toolstack::{ControlPlane, ToolstackMode};

use crate::figures::{meta, Dep, FigureSpec, Scale, UnitOutput, UnitSpec};
use crate::worldcache::{self, WorldSpec};

/// Injection probabilities swept per mode (0 = fault-free baseline).
const RATES: [f64; 5] = [0.0, 0.02, 0.05, 0.1, 0.2];

/// Seed for the fault plans (distinct from the plane's own seed so the
/// two RNG streams cannot alias).
const FAULT_SEED: u64 = 0xfa17;

fn machine() -> Machine {
    Machine::preset(MachinePreset::XeonE5_1630V3)
}

/// One mode's rate sweep: N create+boots per rate, counting per-domain
/// failures and averaging the successes' creation latency.
fn mode_unit(scale: Scale, mode: ToolstackMode) -> UnitSpec {
    let n = scale.scaled(200);
    // The rate-0 baseline reads the shared fault-free chain (same
    // world as the density figures); the faulty rates build their own.
    let zero_rate_spec = WorldSpec {
        machine: machine(),
        dom0_cores: 1,
        mode,
        image: GuestImage::unikernel_daytime(),
        seed: 42,
    };
    let cost = match mode {
        ToolstackMode::Xl => 60.0,
        ToolstackMode::ChaosXs => 40.0,
        _ => 10.0,
    };
    UnitSpec::new(mode.label(), move || {
        let img = GuestImage::unikernel_daytime();
        let mut success = Series::new(format!("{}: success rate (%)", mode.label()));
        let mut mean_ok = Series::new(format!("{}: mean create (ms, successes)", mode.label()));
        let mut out = UnitOutput::new();
        for rate in RATES {
            // At rate 0 the plan never touches its RNG, so the world is
            // byte-identical to a fault-free one — which is exactly the
            // shared chain the density figures boot (same mode, machine,
            // image and seed). Read it instead of re-simulating; the
            // faulty rates genuinely diverge and build their own worlds.
            let (per, ok_times, injected) = if rate == 0.0 {
                let (info, records, stats) = worldcache::records_at(&zero_rate_spec, n);
                let per = UnitOutput::from_info(&info);
                stats.into_output(&mut out);
                let ok_times: Vec<f64> =
                    records.iter().map(|r| r.create().as_millis_f64()).collect();
                (per, ok_times, 0u64)
            } else {
                let mut cp = ControlPlane::new(machine(), 1, mode, 42);
                cp.set_fault_plan(FaultPlan::seeded(FAULT_SEED, rate));
                cp.prewarm(&img);
                let mut ok_times = Vec::new();
                for k in 0..n {
                    match cp.create_and_boot(&format!("{}-{k}", img.name), &img) {
                        Ok((_, create, _)) => ok_times.push(create.as_millis_f64()),
                        // Rolled back and recorded; the host keeps going.
                        Err(_) => {}
                    }
                }
                debug_assert_eq!(cp.create_failures() as usize, n - ok_times.len());
                // Churn leak check (DESIGN.md §6h), on a throwaway fork
                // so the canonical artefacts are untouched: one more
                // create under injection — destroyed on success, rolled
                // back on failure — must return the world to
                // digest-identity. Cheap now that the digest is
                // O(changed). The pool is topped up fault-free on both
                // sides of the probe, mirroring proptest_faults: an
                // aborted shell refill legitimately leaves it one short.
                let mut probe = cp.fork();
                probe.set_fault_plan(FaultPlan::none());
                probe.prewarm(&img);
                let before = probe.world_digest64();
                probe.set_fault_plan(FaultPlan::seeded(FAULT_SEED ^ 1, rate));
                if let Ok((dom, ..)) = probe.create_and_boot("churn-probe", &img) {
                    probe.destroy_vm(dom).expect("churn probe destroy");
                }
                probe.set_fault_plan(FaultPlan::none());
                probe.prewarm(&img);
                assert_eq!(
                    probe.world_digest64(),
                    before,
                    "{} rate {rate}: churn probe leaked world state",
                    mode.label()
                );
                let injected = cp.faults.total_injected();
                (UnitOutput::from_plane(&cp), ok_times, injected)
            };
            success.push(rate, 100.0 * ok_times.len() as f64 / n as f64);
            mean_ok.push(
                rate,
                Summary::of(&ok_times).map(|s| s.mean).unwrap_or(0.0),
            );
            out.meta.push(meta(
                &format!("{}_rate{rate}_injected", mode.label()),
                injected,
            ));
            out.events += per.events;
            out.virtual_ms += ok_times.iter().sum::<f64>();
        }
        out.series = vec![success, mean_ok];
        out
    })
    .dep(Dep::Chain {
        spec: WorldSpec {
            machine: machine(),
            dom0_cores: 1,
            mode,
            image: GuestImage::unikernel_daytime(),
            seed: 42,
        },
        rung: n,
    })
    .cost(cost)
}

/// Drives every named injection site at rate 1.0 against a small pool:
/// shows which sites make a create fail outright (after the bounded
/// retries are exhausted) and which merely add latency, and that none of
/// them crash the control plane.
fn per_site_unit(mode: ToolstackMode) -> UnitSpec {
    let label = format!("per-site {}", mode.label());
    UnitSpec::new(label.clone(), move || {
        let img = GuestImage::unikernel_daytime();
        let mut s = Series::new(format!("{label}: failed creates of 10 (rate 1.0)"));
        let mut out = UnitOutput::new();
        for (x, site) in FaultSite::ALL.into_iter().enumerate() {
            let mut cp = ControlPlane::new(machine(), 1, mode, 42);
            cp.set_fault_plan(FaultPlan::at_site(FAULT_SEED, site));
            let mut failed = 0u64;
            for k in 0..10 {
                if cp.create_and_boot(&format!("vm-{k}"), &img).is_err() {
                    failed += 1;
                }
            }
            s.push(x as f64, failed as f64);
            out.meta.push(meta(
                &format!("{}_{}_failed", mode.label(), site.name()),
                failed,
            ));
            let per = UnitOutput::from_plane(&cp);
            out.events += per.events;
            out.virtual_ms += per.virtual_ms;
        }
        out.series = vec![s];
        out
    })
}

/// The fault sweep as a registry figure.
pub fn spec(scale: Scale) -> FigureSpec {
    FigureSpec {
        id: "faults",
        title: "Fault injection: create latency and success rate vs fault rate",
        xlabel: "fault rate (per-site series: site index)",
        ylabel: "success rate (%) / mean create (ms) / failed creates",
        sample_xs: RATES.to_vec(),
        meta: vec![
            meta("fault_seed", FAULT_SEED),
            meta(
                "sites",
                FaultSite::ALL
                    .into_iter()
                    .map(FaultSite::name)
                    .collect::<Vec<_>>()
                    .join(","),
            ),
        ],
        units: vec![
            mode_unit(scale, ToolstackMode::Xl),
            mode_unit(scale, ToolstackMode::ChaosXs),
            mode_unit(scale, ToolstackMode::LightVm),
            per_site_unit(ToolstackMode::ChaosXs),
            per_site_unit(ToolstackMode::LightVm),
        ],
    }
}
