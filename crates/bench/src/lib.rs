//! Shared helpers for the figure-regeneration binaries, the figure
//! registry ([`figures`]) and the parallel runner ([`runner`]).

pub mod ablations;
pub mod alloc;
pub mod churn;
pub mod cluster;
pub mod faultsweep;
pub mod figures;
pub mod probewalk;
pub mod runner;
pub mod sched;
pub mod worldcache;

use std::path::PathBuf;

use metrics::Figure;

pub use figures::Scale;

/// Where figure artefacts (.json/.csv) are written.
pub fn out_dir() -> PathBuf {
    std::env::var_os("LIGHTVM_FIG_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/figures"))
}

/// Prints the figure as a table sampled at `xs` and writes the artefacts.
pub fn finish(fig: &Figure, xs: &[f64]) {
    print!("{}", fig.render_table(xs));
    let dir = out_dir();
    match fig.write_files(&dir) {
        Ok(()) => println!("# wrote {}/{}.{{json,csv}}", dir.display(), fig.id),
        Err(e) => eprintln!("# WARNING: could not write artefacts: {e}"),
    }
}

/// Densities at which the sweep binaries measure (denser at the start,
/// then every 50 up to `max`).
pub fn density_steps(max: usize) -> Vec<usize> {
    let mut steps = vec![1, 2, 5, 10, 20, 35, 50, 75, 100];
    let mut n = 150;
    while n <= max {
        steps.push(n);
        n += 50;
    }
    steps.retain(|&s| s <= max);
    if steps.last() != Some(&max) {
        steps.push(max);
    }
    steps
}

/// Whether `n` is on the density ladder — i.e. would appear in
/// [`density_steps`]`(max)` for every `max >= n` that is itself on the
/// ladder. The world cache samples expensive per-density observables
/// (CPU utilisation is O(guests)) only at ladder points, so the rule
/// must not depend on any particular sweep's target.
pub fn on_density_ladder(n: usize) -> bool {
    matches!(n, 1 | 2 | 5 | 10 | 20 | 35 | 50 | 75 | 100) || (n >= 150 && n % 50 == 0)
}

/// Whether a quick (reduced-scale) run was requested.
pub fn quick() -> bool {
    Scale::from_env().quick
}

/// Scale factor for run sizes: full scale by default, 1/10 with
/// `LIGHTVM_QUICK=1`.
pub fn scaled(n: usize) -> usize {
    Scale::from_env().scaled(n)
}

use guests::GuestImage;
use simcore::{Machine, SimTime};
use toolstack::{ControlPlane, ToolstackMode};

/// One guest's create/boot measurement within a density sweep.
#[derive(Clone, Copy, Debug)]
pub struct SweepPoint {
    /// Guests already running when this one was created.
    pub n_before: usize,
    /// Toolstack creation latency.
    pub create: SimTime,
    /// Guest boot latency.
    pub boot: SimTime,
}

/// Sequentially creates and boots `n` guests of `image` under `mode`,
/// returning one point per guest (the Figure 4/9/11 methodology).
pub fn sweep_create_boot(
    machine: Machine,
    dom0_cores: usize,
    mode: ToolstackMode,
    image: &GuestImage,
    n: usize,
    seed: u64,
) -> Vec<SweepPoint> {
    let mut cp = ControlPlane::new(machine, dom0_cores, mode, seed);
    cp.prewarm(image);
    let mut points = Vec::with_capacity(n);
    for i in 0..n {
        let n_before = cp.running_count();
        let (_, create, boot) = cp
            .create_and_boot(&format!("{}-{i}", image.name), image)
            .expect("density sweep create");
        points.push(SweepPoint {
            n_before,
            create,
            boot,
        });
    }
    points
}

/// Extracts an (x = index, y = value ms) series from sweep points.
pub fn series_ms(
    label: &str,
    points: &[SweepPoint],
    f: impl Fn(&SweepPoint) -> SimTime,
) -> metrics::Series {
    metrics::Series::from_points(
        label,
        points
            .iter()
            .enumerate()
            .map(|(i, p)| (i as f64 + 1.0, f(p).as_millis_f64())),
    )
}

