//! Figure 11: boot times for unikernel and Tinyx guests vs Docker containers.
//!
//! Thin wrapper: the actual workload lives in the figure registry
//! (`bench::figures`), shared with the parallel `runall` runner.

fn main() {
    bench::runner::figure_main("fig11");
}
