//! Figure 9: creation times for 1,000 daytime unikernels under every
//! combination of the LightVM mechanisms.

use bench::{series_ms, sweep_create_boot};
use guests::GuestImage;
use metrics::Figure;
use simcore::{Machine, MachinePreset};
use toolstack::ToolstackMode;

fn main() {
    let n = bench::scaled(1000);
    let image = GuestImage::unikernel_daytime();
    let mut fig = Figure::new(
        "fig09",
        "Creation time under each mechanism combination (daytime unikernel)",
        "number of running VMs",
        "creation time (ms)",
    );
    for mode in [
        ToolstackMode::Xl,
        ToolstackMode::ChaosXs,
        ToolstackMode::ChaosXsSplit,
        ToolstackMode::ChaosNoxs,
        ToolstackMode::LightVm,
    ] {
        let pts = sweep_create_boot(
            Machine::preset(MachinePreset::XeonE5_1630V3),
            1,
            mode,
            &image,
            n,
            42,
        );
        fig.push_series(series_ms(mode.label(), &pts, |p| p.create));
        eprintln!("# swept {}", mode.label());
    }
    fig.set_meta("machine", "Xeon E5-1630 v3, 1 Dom0 core + 3 guest cores");
    let xs: Vec<f64> = bench::density_steps(n).iter().map(|&v| v as f64).collect();
    bench::finish(&fig, &xs);
}
