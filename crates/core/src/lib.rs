//! LightVM: lightweight virtualization with VM-grade isolation
//! (reproduction of Manco et al., *My VM is Lighter (and Safer) than your
//! Container*, SOSP 2017).
//!
//! This crate is the top of the stack: a [`Host`] facade over the
//! simulated Xen control plane ([`toolstack::ControlPlane`]) plus the
//! paper's four §7 use cases as runnable library modules:
//!
//! - [`usecases::firewall`]: per-user personal firewalls at the mobile
//!   edge (Figure 16a);
//! - [`usecases::jit`]: just-in-time service instantiation (Figure 16b);
//! - [`usecases::tls`]: high-density TLS termination (Figure 16c);
//! - [`usecases::compute`]: an Amazon-Lambda-like Minipython compute
//!   service (Figures 17 and 18).
//!
//! # Quick start
//!
//! ```
//! use lightvm::{Host, ToolstackMode};
//! use lightvm::guests::GuestImage;
//! use simcore::MachinePreset;
//!
//! // A 4-core host driven by the full LightVM control plane.
//! let mut host = Host::new(MachinePreset::XeonE5_1630V3, 1, ToolstackMode::LightVm, 42);
//! let image = GuestImage::unikernel_daytime();
//! host.prewarm(&image);
//! let vm = host.launch("my-first-vm", &image).unwrap();
//! // Millisecond-scale instantiation:
//! assert!((vm.create_time + vm.boot_time).as_millis_f64() < 10.0);
//! ```

pub mod cli;
pub mod host;
pub mod usecases;

pub use host::{Host, LaunchedVm};
pub use toolstack::{ControlPlane, CreateReport, PlaneError, SavedVm, ToolstackMode, VmConfig};

// Re-export the substrate crates under stable names so downstream users
// need only depend on `lightvm`.
pub use container;
pub use devices;
pub use guests;
pub use hypervisor;
pub use lvnet as net;
pub use metrics;
pub use noxs;
pub use simcore;
pub use tinyx;
pub use toolstack;
pub use xenstore;
