//! Primitive cost constants and per-category accounting.
//!
//! Every mechanism in the reproduction is implemented for real (stores,
//! transactions, handshakes, schedulers); only the *primitive* costs — a
//! software interrupt, a domain crossing, loading one MB — are constants,
//! calibrated here against the numbers reported in the paper (§4, §6).
//! The [`Meter`] reproduces the creation-overhead categorisation of
//! Figure 5.

use std::collections::BTreeMap;
use std::fmt;

use crate::time::SimTime;

/// Overhead categories used by the instrumented toolstack (paper §4.2).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Category {
    /// Parsing the VM configuration file.
    Config,
    /// Interacting with the hypervisor (memory, vCPUs, ...).
    Hypervisor,
    /// Reading from / writing to the XenStore.
    Xenstore,
    /// Creating and configuring virtual devices.
    Devices,
    /// Parsing the kernel image and loading it into memory.
    Load,
    /// Toolstack-internal state keeping.
    Toolstack,
    /// Anything outside the Figure 5 categories (boot, networking, ...).
    Other,
}

impl Category {
    /// All categories in the order Figure 5 stacks them.
    pub const ALL: [Category; 7] = [
        Category::Toolstack,
        Category::Load,
        Category::Devices,
        Category::Xenstore,
        Category::Hypervisor,
        Category::Config,
        Category::Other,
    ];

    /// Short label used by figure harnesses.
    pub fn label(self) -> &'static str {
        match self {
            Category::Config => "config",
            Category::Hypervisor => "hypervisor",
            Category::Xenstore => "xenstore",
            Category::Devices => "devices",
            Category::Load => "load",
            Category::Toolstack => "toolstack",
            Category::Other => "other",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Accumulates virtual-time cost by [`Category`].
///
/// Subsystems charge their work here; the toolstack snapshots the meter
/// before and after an operation to produce a breakdown.
#[derive(Clone, Debug, Default)]
pub struct Meter {
    total: SimTime,
    by_cat: BTreeMap<Category, SimTime>,
}

impl Meter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Meter::default()
    }

    /// Charges `dt` to `cat`, returning `dt` for chaining.
    pub fn charge(&mut self, cat: Category, dt: SimTime) -> SimTime {
        self.total += dt;
        *self.by_cat.entry(cat).or_insert(SimTime::ZERO) += dt;
        dt
    }

    /// Total charged across all categories.
    pub fn total(&self) -> SimTime {
        self.total
    }

    /// Amount charged to one category.
    pub fn of(&self, cat: Category) -> SimTime {
        self.by_cat.get(&cat).copied().unwrap_or(SimTime::ZERO)
    }

    /// Difference against an earlier snapshot of the same meter.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not a prefix of `self`
    /// (i.e. has more charge in some category).
    pub fn since(&self, earlier: &Meter) -> Meter {
        let mut out = Meter::new();
        for cat in Category::ALL {
            let d = self.of(cat).saturating_sub(earlier.of(cat));
            debug_assert!(self.of(cat) >= earlier.of(cat), "meter went backwards");
            if !d.is_zero() {
                out.charge(cat, d);
            }
        }
        out
    }

    /// Iterates over non-zero categories in stacking order.
    pub fn iter(&self) -> impl Iterator<Item = (Category, SimTime)> + '_ {
        Category::ALL
            .into_iter()
            .filter_map(|c| self.by_cat.get(&c).map(|&t| (c, t)))
    }
}

macro_rules! cost_model {
    ($($(#[$doc:meta])* $name:ident = $default:expr;)*) => {
        /// Calibrated primitive costs of the paper's testbed.
        ///
        /// Defaults come from [`CostModel::paper_defaults`], anchored to the
        /// Xeon E5-1630 v3 machine; other machines use [`CostModel::scaled`].
        #[derive(Clone, Debug)]
        pub struct CostModel {
            $( $(#[$doc])* pub $name: SimTime, )*
        }

        impl CostModel {
            /// The calibration described in DESIGN.md §4.
            pub fn paper_defaults() -> Self {
                CostModel { $( $name: $default, )* }
            }

            /// Returns a copy with every time cost multiplied by `factor`
            /// (used for slower/faster per-core machines).
            pub fn scaled(&self, factor: f64) -> Self {
                CostModel { $( $name: self.$name.scale(factor), )* }
            }
        }
    };
}

cost_model! {
    // --- XenStore wire protocol (paper §4.2) -----------------------------
    /// One software interrupt (event-channel notification).
    xs_soft_interrupt = SimTime::from_micros_f64(3.0);
    /// One privilege-domain crossing (guest <-> hypervisor <-> Dom0).
    xs_domain_crossing = SimTime::from_micros_f64(1.5);
    /// Store-side processing of one request, excluding payload and watches.
    xs_process_base = SimTime::from_micros_f64(12.0);
    /// Per payload byte (marshalling + copying).
    xs_payload_per_byte = SimTime::from_nanos(6);
    /// Appending one line to the access log.
    xs_log_line = SimTime::from_micros_f64(18.0);
    /// Rotating one of the 20 log files.
    xs_log_rotate_per_file = SimTime::from_millis_f64(9.0);
    /// Checking one registered watch against a written path.
    xs_watch_check = SimTime::from_nanos(250);
    /// Delivering one fired watch event to its owner.
    xs_watch_fire = SimTime::from_micros_f64(22.0);
    /// Per-connection poll overhead added to every request.
    xs_poll_per_conn = SimTime::from_nanos(700);
    /// Copy-on-write snapshot of one store node at transaction start.
    xs_txn_snapshot_per_node = SimTime::from_nanos(900);
    /// Validating one store node at transaction commit.
    xs_txn_validate_per_node = SimTime::from_nanos(450);
    /// Listing one entry of a directory node.
    xs_dir_per_entry = SimTime::from_nanos(1200);

    // --- Hypervisor -------------------------------------------------------
    /// Fixed cost of any hypercall (trap + dispatch).
    hypercall_base = SimTime::from_micros_f64(2.0);
    /// `XEN_DOMCTL_createdomain`: allocate domain structures.
    domctl_create = SimTime::from_micros_f64(300.0);
    /// Reserving a memory range for a guest (bookkeeping).
    mem_reserve_base = SimTime::from_micros_f64(180.0);
    /// Preparing (scrub + p2m + page-table build) one MiB of guest
    /// memory.
    mem_prep_per_mib = SimTime::from_micros_f64(1200.0);
    /// Creating one vCPU.
    vcpu_create = SimTime::from_micros_f64(140.0);
    /// One event-channel operation (alloc/bind/send/close).
    evtchn_op = SimTime::from_micros_f64(1.2);
    /// One grant-table operation (grant/map/unmap).
    grant_op = SimTime::from_micros_f64(1.6);
    /// Setting up the read-only noxs device memory page for a guest.
    noxs_page_setup = SimTime::from_micros_f64(40.0);
    /// One noxs hypercall writing/reading a device page entry.
    noxs_page_op = SimTime::from_micros_f64(5.0);
    /// Destroying a domain (per call, excluding per-MiB teardown).
    domctl_destroy = SimTime::from_micros_f64(400.0);
    /// Releasing one MiB of guest memory.
    mem_release_per_mib = SimTime::from_micros_f64(12.0);

    // --- Toolstack ---------------------------------------------------------
    /// xl/libxl internal state keeping per operation.
    xl_internal = SimTime::from_millis_f64(7.0);
    /// chaos/libchaos internal state keeping per operation.
    chaos_internal = SimTime::from_micros_f64(700.0);
    /// Parsing a VM configuration file (fixed part).
    config_parse_base = SimTime::from_micros_f64(500.0);
    /// Parsing one byte of configuration.
    config_parse_per_byte = SimTime::from_nanos(25);
    /// Parsing/validating a kernel image header.
    image_parse_base = SimTime::from_micros_f64(200.0);
    /// Reading + laying out one MiB of kernel image (ramdisk-backed).
    image_load_per_mib = SimTime::from_micros_f64(900.0);
    /// Decompressing + unpacking one MiB of a Linux kernel/initramfs
    /// (unikernels are loaded raw).
    kernel_decompress_per_mib = SimTime::from_micros_f64(24_000.0);
    /// Waiting for udev to deliver a hotplug event to a script.
    udev_deliver = SimTime::from_millis_f64(11.0);
    /// Forking + executing one bash hotplug script.
    hotplug_bash = SimTime::from_millis_f64(28.0);
    /// xendevd handling one hotplug event (no fork, no bash).
    hotplug_xendevd = SimTime::from_micros_f64(250.0);
    /// xl spawning the per-guest qemu device model (PV console/qdisk
    /// backend; chaos does not need one).
    xl_qemu_spawn = SimTime::from_millis_f64(32.0);

    // --- Devices ------------------------------------------------------------
    /// Backend allocating internal structures for one vif/vbd.
    backend_setup = SimTime::from_millis_f64(1.8);
    /// Adding a port to the software switch.
    switch_add_port = SimTime::from_micros_f64(450.0);
    /// Removing a port from the software switch.
    switch_del_port = SimTime::from_micros_f64(300.0);
    /// noxs backend ioctl (device create request through /dev/noxs).
    noxs_ioctl = SimTime::from_micros_f64(18.0);
    /// One xenbus state-machine transition processed by a driver.
    xenbus_transition = SimTime::from_micros_f64(60.0);
    /// Front/back exchanging device parameters over a control page.
    ctrl_page_exchange = SimTime::from_micros_f64(35.0);

    // --- Fault handling ----------------------------------------------------
    /// Watchdog timeout the toolstack waits before declaring a
    /// control-plane phase (hotplug dispatch, xenbus handshake) stalled.
    fault_watchdog_timeout = SimTime::from_millis_f64(5.0);
    /// Base backoff before retrying a failed phase; doubles per retry,
    /// capped at 8x (see `FaultPlan::backoff`).
    fault_backoff_base = SimTime::from_micros_f64(500.0);
    /// Fixed cost of xenstored crashing and re-exec'ing (process spawn +
    /// tdb open), before log replay.
    xs_daemon_restart = SimTime::from_millis_f64(6.0);
    /// Replaying one store node from the persisted database / access log
    /// when xenstored restarts.
    xs_restart_replay_per_node = SimTime::from_micros_f64(2.0);

    // --- Scheduling ------------------------------------------------------------
    /// Added wake-up latency per resident VM on the same core: each time a
    /// booting guest sleeps and wakes (udev settles, initramfs steps), it
    /// re-queues behind its core's runnable peers. This is what makes
    /// Tinyx/Debian boots grow with density (Figure 11) while unikernels
    /// and containers stay flat.
    sched_wake_per_vm = SimTime::from_micros_f64(42.0);

    // --- Containers & processes ---------------------------------------------
    /// fork + exec of a plain process (paper: 3.5 ms avg, 9 ms p90).
    process_fork_exec = SimTime::from_millis_f64(3.3);
    /// One Docker daemon RPC round trip (client -> dockerd -> containerd).
    docker_daemon_rpc = SimTime::from_millis_f64(25.0);
    /// Mounting one image layer (overlayfs).
    docker_layer_mount = SimTime::from_millis_f64(9.0);
    /// Creating the namespaces for a container.
    docker_namespace_setup = SimTime::from_millis_f64(14.0);
    /// Creating and configuring the container cgroups.
    docker_cgroup_setup = SimTime::from_millis_f64(11.0);
    /// veth pair creation + bridge attach.
    docker_veth_setup = SimTime::from_millis_f64(17.0);
    /// Per existing container bookkeeping on the daemon's hot path.
    docker_daemon_per_container = SimTime::from_micros_f64(90.0);

    // --- Checkpoint / migration ----------------------------------------------
    /// Writing one MiB of guest state to the ramdisk.
    ramdisk_write_per_mib = SimTime::from_micros_f64(650.0);
    /// Reading one MiB of guest state from the ramdisk.
    ramdisk_read_per_mib = SimTime::from_micros_f64(500.0);
    /// xl suspend handshake via XenStore control/shutdown + watch wait.
    xl_suspend_wait = SimTime::from_millis_f64(85.0);
    /// xl restore-side device reconnection wait (udev + xenbus).
    xl_restore_reconnect = SimTime::from_millis_f64(320.0);
    /// sysctl split-device suspend request -> guest acknowledgment.
    sysctl_suspend = SimTime::from_millis_f64(12.0);
    /// sysctl split-device resume.
    sysctl_resume = SimTime::from_millis_f64(6.0);
    /// libxc serialising guest context (regs, p2m, grant state) per
    /// domain.
    xc_context_save = SimTime::from_millis_f64(8.0);
    /// libxc restoring guest context per domain.
    xc_context_restore = SimTime::from_millis_f64(6.0);
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_accumulates_by_category() {
        let mut m = Meter::new();
        m.charge(Category::Xenstore, SimTime::from_millis(2));
        m.charge(Category::Xenstore, SimTime::from_millis(3));
        m.charge(Category::Devices, SimTime::from_millis(1));
        assert_eq!(m.total(), SimTime::from_millis(6));
        assert_eq!(m.of(Category::Xenstore), SimTime::from_millis(5));
        assert_eq!(m.of(Category::Devices), SimTime::from_millis(1));
        assert_eq!(m.of(Category::Config), SimTime::ZERO);
    }

    #[test]
    fn meter_since_gives_delta() {
        let mut m = Meter::new();
        m.charge(Category::Load, SimTime::from_millis(1));
        let snap = m.clone();
        m.charge(Category::Load, SimTime::from_millis(2));
        m.charge(Category::Config, SimTime::from_millis(4));
        let d = m.since(&snap);
        assert_eq!(d.of(Category::Load), SimTime::from_millis(2));
        assert_eq!(d.of(Category::Config), SimTime::from_millis(4));
        assert_eq!(d.total(), SimTime::from_millis(6));
    }

    #[test]
    fn scaled_multiplies_every_field() {
        let base = CostModel::paper_defaults();
        let double = base.scaled(2.0);
        assert_eq!(double.xs_process_base, base.xs_process_base.scale(2.0));
        assert_eq!(double.hotplug_bash, base.hotplug_bash.scale(2.0));
        assert_eq!(
            double.docker_daemon_rpc,
            base.docker_daemon_rpc.scale(2.0)
        );
    }

    #[test]
    fn categories_cover_figure_five() {
        let labels: Vec<&str> = Category::ALL.iter().map(|c| c.label()).collect();
        for want in ["toolstack", "load", "devices", "xenstore", "hypervisor", "config"] {
            assert!(labels.contains(&want), "missing category {want}");
        }
    }

    #[test]
    fn meter_iter_is_in_stacking_order() {
        let mut m = Meter::new();
        m.charge(Category::Config, SimTime::from_millis(1));
        m.charge(Category::Toolstack, SimTime::from_millis(1));
        let cats: Vec<Category> = m.iter().map(|(c, _)| c).collect();
        assert_eq!(cats, vec![Category::Toolstack, Category::Config]);
    }
}
