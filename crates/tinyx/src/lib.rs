//! Tinyx: an automated build system for minimalistic Linux VM images
//! (paper §3.2).
//!
//! Tinyx takes two inputs — an application and a target platform — and
//! produces a tailor-made VM image: a minimal, BusyBox-based distribution
//! containing just the application and its dependencies, plus a trimmed
//! kernel derived from `tinyconfig`.
//!
//! The pipeline implemented here mirrors the paper's:
//!
//! 1. dependency discovery via `objdump` (shared libraries) and the
//!    package manager (package closure);
//! 2. a blacklist of packages required only for installation (dpkg, apt)
//!    and a user whitelist;
//! 3. overlay assembly: install the closure over a debootstrap base in an
//!    OverlayFS mount, strip caches, merge onto a BusyBox underlay and
//!    add an init glue;
//! 4. kernel minimisation: start from `tinyconfig` + platform options,
//!    then iteratively disable candidate options, rebuild with
//!    `olddefconfig` (dependency re-closure) and boot-test, keeping every
//!    disable that still boots and serves the app.
//!
//! The package database and kernel option set are synthetic but
//! structurally faithful (dependency closure, `provides`, essential
//! flags, option dependencies); see DESIGN.md for the substitution note.

pub mod builder;
pub mod kernel;
pub mod packages;

pub use builder::{BuildReport, TinyxBuilder, TinyxImage};
pub use kernel::{KernelBuilder, KernelConfig, Platform};
pub use packages::{App, Package, PackageDb};
