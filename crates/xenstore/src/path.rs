//! XenStore path handling.

use std::fmt;
use std::sync::Arc;

use crate::store::XsError;

/// A validated, absolute XenStore path (e.g. `/local/domain/3/name`).
///
/// Paths are `/`-separated; components may contain alphanumerics and
/// `-_@:.`, matching what xenstored accepts in practice.
///
/// The string is held in an `Arc`, so cloning a path — watch events,
/// transaction write logs — is a refcount bump, and paths materialised
/// from the interner share the interner's own allocation.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct XsPath {
    // Stored without a trailing slash; root is "/".
    raw: Arc<str>,
}

impl XsPath {
    /// The root path `/`.
    pub fn root() -> XsPath {
        XsPath { raw: "/".into() }
    }

    /// Wraps an interner-held path without re-validating. Only the
    /// interner stores pre-validated paths, hence crate-private.
    pub(crate) fn from_interned(raw: Arc<str>) -> XsPath {
        XsPath { raw }
    }

    /// Parses and validates a path.
    pub fn parse(s: &str) -> Result<XsPath, XsError> {
        if s.is_empty() || !s.starts_with('/') {
            return Err(XsError::Invalid);
        }
        if s == "/" {
            return Ok(XsPath::root());
        }
        if s.ends_with('/') {
            return Err(XsError::Invalid);
        }
        for comp in s[1..].split('/') {
            if comp.is_empty() || !comp.bytes().all(valid_byte) {
                return Err(XsError::Invalid);
            }
        }
        Ok(XsPath { raw: s.into() })
    }

    /// The path string.
    pub fn as_str(&self) -> &str {
        &self.raw
    }

    /// Iterates over path components (empty for root). Borrows from the
    /// path — store lookups and watch walks must not allocate.
    pub fn components(&self) -> Components<'_> {
        Components {
            inner: if &*self.raw == "/" {
                None
            } else {
                Some(self.raw[1..].split('/'))
            },
        }
    }

    /// Number of components (depth); root is 0. Counted from the raw
    /// bytes, no allocation or split.
    pub fn depth(&self) -> usize {
        if &*self.raw == "/" {
            0
        } else {
            self.raw.bytes().filter(|&b| b == b'/').count()
        }
    }

    /// The final component, `None` for root.
    pub fn last_component(&self) -> Option<&str> {
        if &*self.raw == "/" {
            None
        } else {
            self.raw.rfind('/').map(|i| &self.raw[i + 1..])
        }
    }

    /// Appends a child component.
    pub fn child(&self, comp: &str) -> Result<XsPath, XsError> {
        if comp.is_empty() || !comp.bytes().all(valid_byte) {
            return Err(XsError::Invalid);
        }
        let raw = if &*self.raw == "/" {
            format!("/{comp}")
        } else {
            format!("{}/{comp}", self.raw)
        };
        Ok(XsPath { raw: raw.into() })
    }

    /// The parent path; root's parent is root.
    pub fn parent(&self) -> XsPath {
        XsPath {
            raw: self.parent_str().into(),
        }
    }

    /// The parent path as a borrowed slice of this one (`"/"` for root
    /// and depth-1 paths). Use with [`std::borrow::Borrow`]-based map
    /// lookups to avoid allocating on read paths.
    pub fn parent_str(&self) -> &str {
        match self.raw.rfind('/') {
            Some(0) | None => "/",
            Some(idx) => &self.raw[..idx],
        }
    }

    /// Iterates over `self` and every ancestor, as borrowed slices:
    /// `/a/b/c` yields `"/a/b/c"`, `"/a/b"`, `"/a"`, `"/"`. No
    /// allocation — this is the watch-table walk.
    pub fn ancestors(&self) -> Ancestors<'_> {
        Ancestors {
            rest: Some(&self.raw),
        }
    }

    /// True if `self` equals `other` or is a descendant of it.
    pub fn is_self_or_descendant_of(&self, other: &XsPath) -> bool {
        if &*other.raw == "/" {
            return true;
        }
        self.raw == other.raw
            || (self.raw.starts_with(&*other.raw)
                && self.raw.as_bytes().get(other.raw.len()) == Some(&b'/'))
    }

    /// Length in bytes (used for payload costing).
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// Paths are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

fn valid_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'@' | b':' | b'.')
}

/// Borrowing iterator over path components; see [`XsPath::components`].
#[derive(Clone)]
pub struct Components<'a> {
    inner: Option<std::str::Split<'a, char>>,
}

impl<'a> Iterator for Components<'a> {
    type Item = &'a str;

    fn next(&mut self) -> Option<&'a str> {
        self.inner.as_mut()?.next()
    }
}

/// Borrowing iterator over a path and its ancestors; see
/// [`XsPath::ancestors`].
#[derive(Clone)]
pub struct Ancestors<'a> {
    rest: Option<&'a str>,
}

impl<'a> Iterator for Ancestors<'a> {
    type Item = &'a str;

    fn next(&mut self) -> Option<&'a str> {
        let cur = self.rest?;
        self.rest = if cur == "/" {
            None
        } else {
            Some(match cur.rfind('/') {
                Some(0) | None => "/",
                Some(idx) => &cur[..idx],
            })
        };
        Some(cur)
    }
}

/// `XsPath` orders, hashes and compares exactly like its raw string, so
/// `BTreeMap<XsPath, _>` and `HashMap<XsPath, _>` can be probed with a
/// `&str` slice — the basis of the allocation-free watch/store walks.
impl std::borrow::Borrow<str> for XsPath {
    fn borrow(&self) -> &str {
        &self.raw
    }
}

impl fmt::Display for XsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.raw)
    }
}

impl fmt::Debug for XsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XsPath({})", self.raw)
    }
}

/// Conventional Xen store layout helpers (paths used by the toolstack).
pub mod layout {
    use super::XsPath;

    /// `/local/domain/<domid>`.
    pub fn domain_dir(domid: u32) -> XsPath {
        XsPath::parse(&format!("/local/domain/{domid}")).expect("static path is valid")
    }

    /// `/local/domain/<domid>/name`.
    pub fn domain_name(domid: u32) -> XsPath {
        XsPath::parse(&format!("/local/domain/{domid}/name")).expect("static path is valid")
    }

    /// `/local/domain/<backend_domid>/backend/<kind>/<domid>/<devid>`.
    pub fn backend_dir(backend: u32, kind: &str, domid: u32, devid: u32) -> XsPath {
        XsPath::parse(&format!(
            "/local/domain/{backend}/backend/{kind}/{domid}/{devid}"
        ))
        .expect("static path is valid")
    }

    /// `/local/domain/<domid>/device/<kind>/<devid>`.
    pub fn frontend_dir(domid: u32, kind: &str, devid: u32) -> XsPath {
        XsPath::parse(&format!("/local/domain/{domid}/device/{kind}/{devid}"))
            .expect("static path is valid")
    }

    /// `/local/domain/<domid>/control/shutdown`.
    pub fn control_shutdown(domid: u32) -> XsPath {
        XsPath::parse(&format!("/local/domain/{domid}/control/shutdown"))
            .expect("static path is valid")
    }

    /// `/vm/<uuid-ish>` bookkeeping directory.
    pub fn vm_dir(domid: u32) -> XsPath {
        XsPath::parse(&format!("/vm/{domid}")).expect("static path is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_valid_paths() {
        for p in ["/", "/local", "/local/domain/0", "/a/b-c/d_e/f@1:2.3"] {
            assert!(XsPath::parse(p).is_ok(), "{p} should parse");
        }
    }

    #[test]
    fn parse_rejects_invalid_paths() {
        for p in ["", "a/b", "/a/", "/a//b", "/a b", "/a\n", "/ä"] {
            assert_eq!(XsPath::parse(p).unwrap_err(), XsError::Invalid, "{p:?}");
        }
    }

    #[test]
    fn parent_and_child_are_inverse() {
        let p = XsPath::parse("/local/domain/7").unwrap();
        assert_eq!(p.parent().as_str(), "/local/domain");
        assert_eq!(p.parent().child("7").unwrap(), p);
        assert_eq!(XsPath::parse("/a").unwrap().parent(), XsPath::root());
        assert_eq!(XsPath::root().parent(), XsPath::root());
    }

    #[test]
    fn descendant_checks() {
        let root = XsPath::root();
        let a = XsPath::parse("/a").unwrap();
        let ab = XsPath::parse("/a/b").unwrap();
        let axb = XsPath::parse("/ax/b").unwrap();
        assert!(ab.is_self_or_descendant_of(&a));
        assert!(ab.is_self_or_descendant_of(&root));
        assert!(a.is_self_or_descendant_of(&a));
        assert!(!a.is_self_or_descendant_of(&ab));
        assert!(!axb.is_self_or_descendant_of(&a), "prefix must respect separators");
    }

    #[test]
    fn components_and_depth() {
        assert_eq!(XsPath::root().depth(), 0);
        assert_eq!(XsPath::root().components().count(), 0);
        let p = XsPath::parse("/local/domain/3/name").unwrap();
        assert_eq!(
            p.components().collect::<Vec<_>>(),
            vec!["local", "domain", "3", "name"]
        );
        assert_eq!(p.depth(), 4);
        assert_eq!(p.last_component(), Some("name"));
        assert_eq!(XsPath::root().last_component(), None);
    }

    #[test]
    fn ancestors_walk_to_root() {
        let p = XsPath::parse("/a/b/c").unwrap();
        assert_eq!(
            p.ancestors().collect::<Vec<_>>(),
            vec!["/a/b/c", "/a/b", "/a", "/"]
        );
        assert_eq!(XsPath::root().ancestors().collect::<Vec<_>>(), vec!["/"]);
        assert_eq!(p.parent_str(), "/a/b");
        assert_eq!(XsPath::parse("/a").unwrap().parent_str(), "/");
    }

    #[test]
    fn borrow_str_matches_map_semantics() {
        use std::borrow::Borrow;
        use std::collections::BTreeMap;
        let mut m: BTreeMap<XsPath, u32> = BTreeMap::new();
        m.insert(XsPath::parse("/a/b").unwrap(), 1);
        let s: &str = m.keys().next().unwrap().borrow();
        assert_eq!(s, "/a/b");
        assert_eq!(m.get("/a/b"), Some(&1));
        assert_eq!(m.get("/a"), None);
    }

    #[test]
    fn layout_paths_parse() {
        assert_eq!(layout::domain_dir(3).as_str(), "/local/domain/3");
        assert_eq!(
            layout::backend_dir(0, "vif", 5, 0).as_str(),
            "/local/domain/0/backend/vif/5/0"
        );
        assert_eq!(
            layout::frontend_dir(5, "vif", 0).as_str(),
            "/local/domain/5/device/vif/0"
        );
    }
}
