//! Fluid processor-sharing CPU contention model.
//!
//! Guests are pinned to cores (the paper assigns VMs to cores round-robin).
//! Each core has capacity 1.0. Two task kinds exist:
//!
//! - **Finite** tasks have a fixed amount of CPU work (e.g. a guest boot,
//!   a compute-service job) and want as much CPU as they can get.
//! - **Background** tasks model idle-guest housekeeping (Debian services,
//!   Tinyx timer ticks) as a fluid fractional demand of one core.
//!
//! Allocation per core is the classic water-filling fair share: every
//! runnable task receives an equal share `s`, background tasks consume at
//! most their demand, and the surplus is redistributed. This reproduces
//! how the Xen credit scheduler degrades boot times under load (Fig. 11)
//! and the CPU-utilisation scaling of Fig. 15.
//!
//! Density sweeps register thousands of *identical* background demands per
//! core (every guest of one image), and every boot probes the share three
//! times (add probe / read rate / swap probe for the idle demand). The
//! share recompute therefore keeps per-core aggregates and solves the
//! water-fill in closed form when all background demands on a core are
//! equal — O(1) per mutation instead of gather + sort over every task.
//! Any mutation that leaves that regime (removing a background task,
//! changing a demand, mixed demands) falls back to the original sorted
//! water-fill, which also re-establishes the aggregates. Both paths
//! produce bit-identical shares: with equal demands the sorted scan can
//! only terminate at `j == 0` or `j == k` (the candidate share moves
//! monotonically away from the common demand), and the fold-left demand
//! sum over the stable-sorted array equals the insertion-order sum.

use std::collections::HashMap;

use crate::time::SimTime;

/// Handle to a task registered with [`CpuSim`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct TaskId(u64);

/// The two task kinds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TaskKind {
    /// `remaining` CPU-seconds of work (measured at reference core speed).
    Finite {
        /// CPU-seconds left.
        remaining: f64,
    },
    /// A fluid fractional demand of one core, in `[0, 1]`.
    Background {
        /// Demanded fraction of a core.
        demand: f64,
    },
}

/// One core's tasks (kinds inline, insertion-ordered) plus the cached
/// fair share and the aggregates behind the O(1) recompute fast path.
#[derive(Clone, Debug)]
struct CoreState {
    entries: Vec<(TaskId, TaskKind)>,
    /// Cached fair share (rate granted to each finite task).
    share: f64,
    /// Whether the background aggregates below mirror `entries`.
    agg_ok: bool,
    /// All background demands on this core are equal.
    bg_equal: bool,
    bg_count: usize,
    /// The common demand when `bg_equal && bg_count > 0`.
    bg_demand: f64,
    /// Fold-left sum of background demands in insertion order.
    bg_total: f64,
    /// Finite tasks with remaining work > 0.
    n_active: usize,
    /// Reused slow-path sort buffer.
    scratch: Vec<f64>,
}

impl CoreState {
    fn new() -> Self {
        CoreState {
            entries: Vec::new(),
            share: 1.0,
            agg_ok: true,
            bg_equal: true,
            bg_count: 0,
            bg_demand: 0.0,
            bg_total: 0.0,
            n_active: 0,
            scratch: Vec::new(),
        }
    }
}

/// Per-core processor-sharing simulator over virtual time.
#[derive(Clone)]
pub struct CpuSim {
    /// Task id -> core index.
    tasks: HashMap<TaskId, usize>,
    per_core: Vec<CoreState>,
    now: SimTime,
    next_id: u64,
    speed: f64,
}

impl CpuSim {
    /// Creates a simulator with `cores` cores of relative speed `speed`
    /// (1.0 = the paper's Xeon E5-1630 v3 reference).
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0` or `speed <= 0`.
    pub fn new(cores: usize, speed: f64) -> Self {
        assert!(cores > 0, "need at least one core");
        assert!(speed > 0.0, "speed must be positive");
        CpuSim {
            tasks: HashMap::new(),
            per_core: vec![CoreState::new(); cores],
            now: SimTime::ZERO,
            next_id: 0,
            speed,
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.per_core.len()
    }

    /// Current virtual time of the CPU model.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of tasks currently pinned to `core`.
    pub fn tasks_on_core(&self, core: usize) -> usize {
        self.per_core[core].entries.len()
    }

    /// Total tasks ever registered (finite and background) — a cheap
    /// measure of how much scheduling work this simulation performed.
    pub fn tasks_started(&self) -> u64 {
        self.next_id
    }

    /// Registers a finite task with `work` CPU-seconds on `core`.
    pub fn add_finite(&mut self, core: usize, work: f64) -> TaskId {
        self.add(core, TaskKind::Finite { remaining: work.max(0.0) })
    }

    /// Registers a background task demanding `demand` of a core.
    pub fn add_background(&mut self, core: usize, demand: f64) -> TaskId {
        self.add(
            core,
            TaskKind::Background {
                demand: demand.clamp(0.0, 1.0),
            },
        )
    }

    fn add(&mut self, core: usize, kind: TaskKind) -> TaskId {
        assert!(core < self.per_core.len(), "core {core} out of range");
        let id = TaskId(self.next_id);
        self.next_id += 1;
        self.tasks.insert(id, core);
        let cs = &mut self.per_core[core];
        match kind {
            TaskKind::Finite { remaining } => {
                if remaining > 0.0 {
                    cs.n_active += 1;
                }
            }
            TaskKind::Background { demand } => {
                if cs.agg_ok {
                    if cs.bg_count == 0 {
                        cs.bg_demand = demand;
                        cs.bg_equal = true;
                    } else if demand != cs.bg_demand {
                        cs.bg_equal = false;
                    }
                    cs.bg_count += 1;
                    cs.bg_total += demand;
                }
            }
        }
        cs.entries.push((id, kind));
        self.recompute(core);
        id
    }

    /// Changes a background task's demand (e.g. a guest going active/idle).
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or not a background task.
    pub fn set_background_demand(&mut self, id: TaskId, demand: f64) {
        let core = *self.tasks.get(&id).expect("unknown task");
        let cs = &mut self.per_core[core];
        let pos = cs
            .entries
            .iter()
            .rposition(|(tid, _)| *tid == id)
            .expect("unknown task");
        match &mut cs.entries[pos].1 {
            TaskKind::Background { demand: d } => *d = demand.clamp(0.0, 1.0),
            TaskKind::Finite { .. } => panic!("not a background task"),
        }
        cs.agg_ok = false;
        self.recompute(core);
    }

    /// Removes a task, returning its remaining work (finite) or demand
    /// (background). Returns `None` if the id is unknown.
    pub fn remove(&mut self, id: TaskId) -> Option<f64> {
        let core = self.tasks.remove(&id)?;
        let cs = &mut self.per_core[core];
        let pos = cs
            .entries
            .iter()
            .rposition(|(tid, _)| *tid == id)
            .expect("task map and core entries out of sync");
        let (_, kind) = cs.entries.remove(pos);
        match kind {
            TaskKind::Finite { remaining } => {
                if remaining > 0.0 {
                    cs.n_active -= 1;
                }
            }
            TaskKind::Background { .. } => {
                // Removal breaks the append-only fold-left demand sum;
                // the next recompute re-derives the aggregates.
                cs.agg_ok = false;
            }
        }
        self.recompute(core);
        Some(match kind {
            TaskKind::Finite { remaining } => remaining,
            TaskKind::Background { demand } => demand,
        })
    }

    fn kind_of(&self, id: TaskId) -> Option<TaskKind> {
        let core = *self.tasks.get(&id)?;
        let cs = &self.per_core[core];
        cs.entries
            .iter()
            .rev()
            .find(|(tid, _)| *tid == id)
            .map(|(_, k)| *k)
    }

    /// Remaining work of a finite task.
    pub fn remaining(&self, id: TaskId) -> Option<f64> {
        match self.kind_of(id)? {
            TaskKind::Finite { remaining } => Some(remaining),
            TaskKind::Background { .. } => None,
        }
    }

    /// Rate (CPU-seconds per second) currently granted to a finite task.
    pub fn rate_of(&self, id: TaskId) -> Option<f64> {
        let core = *self.tasks.get(&id)?;
        match self.kind_of(id)? {
            TaskKind::Finite { .. } => Some(self.per_core[core].share * self.speed),
            TaskKind::Background { .. } => None,
        }
    }

    /// Utilised fraction of `core` (0..=1).
    pub fn core_utilization(&self, core: usize) -> f64 {
        let cs = &self.per_core[core];
        let s = cs.share;
        let mut u = 0.0;
        for (_, kind) in &cs.entries {
            match *kind {
                TaskKind::Finite { remaining } if remaining > 0.0 => u += s,
                TaskKind::Finite { .. } => {}
                TaskKind::Background { demand } => u += demand.min(s),
            }
        }
        u.min(1.0)
    }

    /// Mean utilisation across all cores (0..=1).
    pub fn total_utilization(&self) -> f64 {
        let n = self.per_core.len();
        (0..n).map(|c| self.core_utilization(c)).sum::<f64>() / n as f64
    }

    /// Time of the earliest finite-task completion under current
    /// allocations, with the task id. `None` if no finite work remains.
    pub fn next_completion(&self) -> Option<(SimTime, TaskId)> {
        let mut cands: Vec<(TaskId, f64, f64)> = Vec::new();
        for cs in &self.per_core {
            let rate = cs.share * self.speed;
            for (id, kind) in &cs.entries {
                if let TaskKind::Finite { remaining } = kind {
                    cands.push((*id, *remaining, rate));
                }
            }
        }
        cands.sort_by_key(|c| c.0); // determinism
        let mut best: Option<(SimTime, TaskId)> = None;
        for (id, remaining, rate) in cands {
            if remaining <= 0.0 {
                return Some((self.now, id));
            }
            if rate > 0.0 {
                // Round up to 1 ns: a sub-nanosecond residue (float
                // error after a burn) must still advance the clock,
                // or run_to_completion would spin forever.
                let dt = SimTime::from_secs_f64(remaining / rate)
                    .max(SimTime::from_nanos(1));
                let at = self.now + dt;
                if best.map(|(b, _)| at < b).unwrap_or(true) {
                    best = Some((at, id));
                }
            }
        }
        best
    }

    /// Advances the model to absolute time `t`, burning down finite work.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if a finite task would complete strictly
    /// before `t` (callers must advance to [`CpuSim::next_completion`]
    /// boundaries first).
    pub fn advance_to(&mut self, t: SimTime) {
        if t <= self.now {
            return;
        }
        let dt = (t - self.now).as_secs_f64();
        for cs in &mut self.per_core {
            let rate = cs.share * self.speed;
            for (_, kind) in &mut cs.entries {
                if let TaskKind::Finite { remaining } = kind {
                    let burn = rate * dt;
                    debug_assert!(
                        *remaining - burn > -1e-6,
                        "finite task overshot completion by {}",
                        burn - *remaining
                    );
                    let was = *remaining;
                    *remaining = (*remaining - burn).max(0.0);
                    if was > 0.0 && *remaining == 0.0 {
                        cs.n_active -= 1;
                    }
                }
            }
        }
        self.now = t;
    }

    /// Runs the given finite task to completion (finite tasks completing
    /// earlier — on any core — are removed along the way), removes it, and
    /// returns the completion time.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or not finite.
    pub fn run_to_completion(&mut self, id: TaskId) -> SimTime {
        match self.kind_of(id) {
            Some(TaskKind::Finite { .. }) => {}
            Some(_) => panic!("not a finite task"),
            None => panic!("unknown task"),
        }
        loop {
            let remaining = match self.kind_of(id) {
                Some(TaskKind::Finite { remaining }) => remaining,
                _ => unreachable!(),
            };
            if remaining <= 1e-9 {
                let at = self.now;
                self.remove(id);
                return at;
            }
            let (at, _) = self
                .next_completion()
                .expect("finite work exists, a completion must too");
            self.advance_to(at);
            self.reap_done();
            if !self.tasks.contains_key(&id) {
                return at;
            }
        }
    }

    /// Removes every finite task whose work has reached zero.
    pub fn reap_done(&mut self) -> Vec<TaskId> {
        let mut done: Vec<TaskId> = Vec::new();
        for cs in &self.per_core {
            for (id, kind) in &cs.entries {
                if let TaskKind::Finite { remaining } = kind {
                    if *remaining <= 1e-9 {
                        done.push(*id);
                    }
                }
            }
        }
        done.sort();
        for &id in &done {
            self.remove(id);
        }
        done
    }

    /// Recomputes the water-filling fair share for one core.
    ///
    /// Solves `sum_i min(d_i, s) + n_finite * s = 1` for `s`, where `d_i`
    /// are background demands on the core. With no finite tasks the share
    /// is the cap applied to background demands (1.0 if undersubscribed).
    fn recompute(&mut self, core: usize) {
        let cs = &mut self.per_core[core];
        if cs.agg_ok && (cs.bg_count == 0 || cs.bg_equal) {
            let total = if cs.bg_count == 0 { 0.0 } else { cs.bg_total };
            cs.share = Self::share_equal(cs.bg_count, cs.bg_demand, total, cs.n_active);
            return;
        }
        // Slow path: gather + sort, exactly the original solve; also
        // re-derives the fast-path aggregates.
        let mut scratch = std::mem::take(&mut cs.scratch);
        scratch.clear();
        let mut n_finite = 0usize;
        for (_, kind) in &cs.entries {
            match *kind {
                TaskKind::Finite { remaining } if remaining > 0.0 => n_finite += 1,
                TaskKind::Finite { .. } => {}
                TaskKind::Background { demand } => scratch.push(demand),
            }
        }
        scratch.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let total_bg: f64 = scratch.iter().sum();
        cs.share = if n_finite == 0 {
            if total_bg <= 1.0 {
                1.0
            } else {
                // Oversubscribed by background alone: water-fill the cap.
                Self::water_fill(&scratch, 0)
            }
        } else if total_bg + n_finite as f64 * 1.0 <= 1.0 {
            // Nobody is throttled; a finite task can take a whole core
            // minus what backgrounds consume.
            1.0 - total_bg
        } else {
            Self::water_fill(&scratch, n_finite)
        };
        cs.bg_count = scratch.len();
        cs.bg_equal = scratch.windows(2).all(|w| w[0] == w[1]);
        cs.bg_demand = scratch.first().copied().unwrap_or(0.0);
        cs.bg_total = total_bg;
        cs.n_active = n_finite;
        cs.agg_ok = true;
        cs.scratch = scratch;
    }

    /// The share when all `k` background demands equal `d` (fold-left sum
    /// `total`), mirroring the branch structure of the slow path bit for
    /// bit.
    fn share_equal(k: usize, d: f64, total: f64, n_finite: usize) -> f64 {
        if n_finite == 0 {
            if total <= 1.0 {
                return 1.0;
            }
            return Self::water_fill_equal(k, d, total, 0);
        }
        if total + n_finite as f64 * 1.0 <= 1.0 {
            return 1.0 - total;
        }
        Self::water_fill_equal(k, d, total, n_finite)
    }

    /// Closed-form [`Self::water_fill`] over `k` equal demands `d`.
    ///
    /// The sorted scan's candidate `s_j = (1 - j*d)/(k - j + n)` moves
    /// monotonically away from `d` as `j` grows (its derivative's sign is
    /// `sign(s_0 - d)`), so the scan can only terminate at `j == 0` (when
    /// `d >= s_0 - 1e-12`) or at `j == k` — intermediate `j` never satisfy
    /// both window bounds. `total` must be the fold-left sum the slow path
    /// would compute, so `j == k` returns the identical float.
    fn water_fill_equal(k: usize, d: f64, total: f64, n_finite: usize) -> f64 {
        let denom0 = (k + n_finite) as f64;
        if denom0 == 0.0 {
            return 1.0;
        }
        let s0 = 1.0 / denom0;
        if k == 0 || d >= s0 - 1e-12 {
            return s0.max(0.0);
        }
        let denom_k = n_finite as f64;
        if denom_k == 0.0 {
            return 1.0;
        }
        ((1.0 - total) / denom_k).max(0.0)
    }

    /// Water-filling solve of `sum min(d_i, s) + n*s = 1` over sorted `d`.
    fn water_fill(sorted_demands: &[f64], n_finite: usize) -> f64 {
        let k = sorted_demands.len();
        let mut prefix = 0.0;
        for j in 0..=k {
            // Assume d_1..d_j are fully satisfied (d_i <= s), the rest and
            // all finite tasks receive s.
            let denom = (k - j + n_finite) as f64;
            if denom == 0.0 {
                return 1.0;
            }
            let s = (1.0 - prefix) / denom;
            let lower_ok = j == 0 || sorted_demands[j - 1] <= s + 1e-12;
            let upper_ok = j == k || sorted_demands[j] >= s - 1e-12;
            if lower_ok && upper_ok {
                return s.max(0.0);
            }
            if j < k {
                prefix += sorted_demands[j];
            }
        }
        // Numerically always resolved above; be safe.
        (1.0 / (k + n_finite).max(1) as f64).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn lone_task_runs_at_full_speed() {
        let mut cpu = CpuSim::new(1, 1.0);
        let id = cpu.add_finite(0, 0.180);
        let done = cpu.run_to_completion(id);
        assert_eq!(done, SimTime::from_millis(180));
    }

    #[test]
    fn speed_scales_rates() {
        let mut cpu = CpuSim::new(1, 0.5);
        let id = cpu.add_finite(0, 0.1);
        let done = cpu.run_to_completion(id);
        assert_eq!(done, SimTime::from_millis(200));
    }

    #[test]
    fn two_finite_tasks_share_a_core() {
        let mut cpu = CpuSim::new(1, 1.0);
        let a = cpu.add_finite(0, 1.0);
        let b = cpu.add_finite(0, 1.0);
        assert!(approx(cpu.rate_of(a).unwrap(), 0.5));
        let done_a = cpu.run_to_completion(a);
        // Both share until both hit 2 s (equal work, equal shares); b is
        // reaped along the way because it finished at the same instant.
        assert_eq!(done_a, SimTime::from_secs(2));
        assert!(cpu.remaining(b).is_none());
    }

    #[test]
    fn background_slows_finite_task() {
        let mut cpu = CpuSim::new(1, 1.0);
        cpu.add_background(0, 0.5);
        let id = cpu.add_finite(0, 0.5);
        // Finite task gets 1 - 0.5 = 0.5 of the core.
        let done = cpu.run_to_completion(id);
        assert_eq!(done, SimTime::from_secs(1));
    }

    #[test]
    fn oversubscribed_core_water_fills() {
        let mut cpu = CpuSim::new(1, 1.0);
        // Two greedy backgrounds (0.8 each) + one finite task:
        // all three are throttled to s = 1/3.
        cpu.add_background(0, 0.8);
        cpu.add_background(0, 0.8);
        let id = cpu.add_finite(0, 1.0);
        assert!(approx(cpu.rate_of(id).unwrap(), 1.0 / 3.0));
        // One small background (0.1) + one greedy (0.9) + one finite:
        // s solves 0.1 + s + s = 1 -> s = 0.45.
        let mut cpu = CpuSim::new(1, 1.0);
        cpu.add_background(0, 0.1);
        cpu.add_background(0, 0.9);
        let id = cpu.add_finite(0, 0.45);
        assert!(approx(cpu.rate_of(id).unwrap(), 0.45));
        assert_eq!(cpu.run_to_completion(id), SimTime::from_secs(1));
    }

    #[test]
    fn utilization_counts_background_demand() {
        let mut cpu = CpuSim::new(4, 1.0);
        for core in 0..4 {
            cpu.add_background(core, 0.25);
        }
        assert!(approx(cpu.total_utilization(), 0.25));
        cpu.add_finite(0, 10.0);
        assert!(approx(cpu.core_utilization(0), 1.0));
    }

    #[test]
    fn background_oversubscription_caps_at_one() {
        let mut cpu = CpuSim::new(1, 1.0);
        for _ in 0..10 {
            cpu.add_background(0, 0.5);
        }
        assert!(approx(cpu.core_utilization(0), 1.0));
    }

    #[test]
    fn removing_tasks_restores_rate() {
        let mut cpu = CpuSim::new(1, 1.0);
        let bg = cpu.add_background(0, 0.5);
        let id = cpu.add_finite(0, 1.0);
        assert!(approx(cpu.rate_of(id).unwrap(), 0.5));
        cpu.remove(bg);
        assert!(approx(cpu.rate_of(id).unwrap(), 1.0));
    }

    #[test]
    fn set_background_demand_updates_share() {
        let mut cpu = CpuSim::new(1, 1.0);
        let bg = cpu.add_background(0, 0.1);
        let id = cpu.add_finite(0, 1.0);
        assert!(approx(cpu.rate_of(id).unwrap(), 0.9));
        // A greedy background is capped at the fair share, not prioritised:
        // with demand 0.6 and one finite task, both get 0.5.
        cpu.set_background_demand(bg, 0.6);
        assert!(approx(cpu.rate_of(id).unwrap(), 0.5));
    }

    #[test]
    fn next_completion_orders_across_cores() {
        let mut cpu = CpuSim::new(2, 1.0);
        let slow = cpu.add_finite(0, 2.0);
        let fast = cpu.add_finite(1, 1.0);
        let (t, id) = cpu.next_completion().unwrap();
        assert_eq!(id, fast);
        assert_eq!(t, SimTime::from_secs(1));
        cpu.advance_to(t);
        cpu.remove(fast);
        let (t2, id2) = cpu.next_completion().unwrap();
        assert_eq!(id2, slow);
        assert_eq!(t2, SimTime::from_secs(2));
    }

    #[test]
    fn advance_burns_work_proportionally() {
        let mut cpu = CpuSim::new(1, 1.0);
        let a = cpu.add_finite(0, 1.0);
        let b = cpu.add_finite(0, 2.0);
        cpu.advance_to(SimTime::from_secs(1));
        assert!(approx(cpu.remaining(a).unwrap(), 0.5));
        assert!(approx(cpu.remaining(b).unwrap(), 1.5));
    }

    #[test]
    fn completion_of_peer_speeds_up_survivor() {
        let mut cpu = CpuSim::new(1, 1.0);
        let _a = cpu.add_finite(0, 0.5);
        let b = cpu.add_finite(0, 1.0);
        // Phase 1: both at 0.5 until t=1 (a done). Phase 2: b alone,
        // 0.5 work at rate 1 -> t=1.5.
        let done_b = cpu.run_to_completion(b);
        assert_eq!(done_b, SimTime::from_millis(1500));
    }

    /// The fast path (equal background demands) and the slow sorted
    /// water-fill must produce bit-identical shares through a mixed
    /// add/remove/burn history.
    #[test]
    fn equal_demand_fast_path_matches_slow_solve() {
        for &(demand, n_bg) in &[
            (0.003_f64, 400_usize),
            (0.02, 60),
            (0.25, 7),
            (0.6, 3),
            (0.0, 100),
        ] {
            // `a` only ever appends (fast path); `b` is the identical
            // world but gets a same-value set_background_demand, which
            // forces the sorted solve and re-derives the aggregates.
            let mut a = CpuSim::new(1, 1.0);
            let mut b = CpuSim::new(1, 1.0);
            let mut bg_b = None;
            let mut bg_a = None;
            for _ in 0..n_bg {
                bg_a = Some(a.add_background(0, demand));
                bg_b = Some(b.add_background(0, demand));
            }
            let (bg_a, bg_b) = (bg_a.unwrap(), bg_b.unwrap());
            b.set_background_demand(bg_b, demand);
            // n_finite = 0: fast- vs slow-derived share.
            assert_eq!(
                a.core_utilization(0).to_bits(),
                b.core_utilization(0).to_bits(),
                "utilization diverges at demand={demand} n_bg={n_bg}"
            );
            let pa = a.add_finite(0, 1.0);
            let pb = b.add_finite(0, 1.0);
            assert_eq!(
                a.rate_of(pa).unwrap().to_bits(),
                b.rate_of(pb).unwrap().to_bits(),
                "probe rate diverges at demand={demand} n_bg={n_bg}"
            );
            // Slow solve with the finite probe present.
            b.set_background_demand(bg_b, demand);
            assert_eq!(
                a.rate_of(pa).unwrap().to_bits(),
                b.rate_of(pb).unwrap().to_bits(),
                "probe rate diverges after slow resolve at demand={demand}"
            );
            // Removing a background falls back to the sorted solve and
            // re-establishes the fast regime on both.
            a.remove(bg_a);
            b.remove(bg_b);
            assert_eq!(
                a.rate_of(pa).unwrap().to_bits(),
                b.rate_of(pb).unwrap().to_bits(),
                "probe rate diverges after removal at demand={demand}"
            );
        }
    }

    /// A finite task burning to exactly zero mid-advance leaves the
    /// incremental active count consistent with a from-scratch recount.
    #[test]
    fn burned_out_task_leaves_share_consistent() {
        let mut cpu = CpuSim::new(1, 1.0);
        cpu.add_background(0, 0.2);
        let a = cpu.add_finite(0, 0.4);
        let (t, id) = cpu.next_completion().unwrap();
        assert_eq!(id, a);
        cpu.advance_to(t);
        // `a` is done (possibly a residue below 1e-9); a fresh probe's
        // share must match a world that never ran `a`.
        cpu.reap_done();
        let probe = cpu.add_finite(0, 1.0);
        let got = cpu.rate_of(probe).unwrap();
        let mut fresh = CpuSim::new(1, 1.0);
        fresh.add_background(0, 0.2);
        let p2 = fresh.add_finite(0, 1.0);
        assert_eq!(got.to_bits(), fresh.rate_of(p2).unwrap().to_bits());
    }
}
