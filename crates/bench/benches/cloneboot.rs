//! Replayed vs fully-executed create at density, per toolstack mode —
//! the microbench behind template boots (DESIGN.md §6g): once a
//! template is recorded, a replayed create charges identical simulated
//! time but replaces xl's O(n) unique-name scan with a closed-form
//! charge, so its wall cost should stay flat as the world fills while
//! the full path grows linearly. Chaos modes have no density-dependent
//! create phase, so replay ≈ full there — the parity is the point.
//!
//! Both sides fork the same prepared world each iteration and then run
//! a batch of [`BATCH`] creates, so the (identical) fork cost is
//! amortized 16-fold and the create cost dominates the number. The
//! replayed side goes through `toolstack::cloneboot::create_and_boot`
//! exactly as the figure pipeline does, which means it also pays the
//! every-replay drift and content checks (DESIGN.md §6h) — the number
//! is the shipped cost, not a best case.
//!
//! Results are recorded in `results/bench_micro_pr7.md`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use guests::GuestImage;
use simcore::{Machine, MachinePreset};
use toolstack::{cloneboot, ControlPlane, ToolstackMode};

const MODES: [ToolstackMode; 3] = [
    ToolstackMode::Xl,
    ToolstackMode::ChaosXs,
    ToolstackMode::LightVm,
];

/// Creates per measured iteration (distinct guest names, forked base).
const BATCH: usize = 16;

/// Boots `n` guests through the template cache, so the returned world's
/// lineage has a recorded (and first-replay-verified) template.
fn templated_world(mode: ToolstackMode, n: usize) -> ControlPlane {
    let img = GuestImage::unikernel_daytime();
    let mut cp = ControlPlane::new(Machine::preset(MachinePreset::XeonE5_1630V3), 1, mode, 42);
    cp.prewarm(&img);
    for i in 0..n {
        cloneboot::create_and_boot(&mut cp, &format!("{}-{i}", img.name), &img)
            .expect("bench boot");
    }
    cp
}

fn bench_replay_vs_full(c: &mut Criterion) {
    let img = GuestImage::unikernel_daytime();
    let counts: &[usize] = if std::env::var_os("LIGHTVM_BENCH_QUICK").is_some() {
        &[100]
    } else {
        &[100, 1000]
    };
    for mode in MODES {
        let mut group = c.benchmark_group(format!("cloneboot_{}", mode.label()));
        for &n in counts {
            let world = templated_world(mode, n);
            let snap = world.snapshot();
            group.bench_function(format!("full_create{BATCH}_{n}"), |b| {
                b.iter(|| {
                    let mut cp = snap.fork();
                    for k in 0..BATCH {
                        black_box(
                            cp.create_and_boot(&format!("probe-{k}"), &img)
                                .expect("full create"),
                        );
                    }
                })
            });
            group.bench_function(format!("replayed_create{BATCH}_{n}"), |b| {
                b.iter(|| {
                    let mut cp = snap.fork();
                    for k in 0..BATCH {
                        black_box(
                            cloneboot::create_and_boot(&mut cp, &format!("probe-{k}"), &img)
                                .expect("replayed create"),
                        );
                    }
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_replay_vs_full);
criterion_main!(benches);
