//! Discrete-event executor.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

/// Handle to a scheduled event, usable for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

type EventFn = Box<dyn FnOnce(&mut Engine)>;

struct Scheduled {
    at: SimTime,
    seq: u64,
    f: EventFn,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    // Reverse ordering: the BinaryHeap is a max-heap, we want earliest-first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A single-threaded discrete-event executor over [`SimTime`].
///
/// Events are closures scheduled at absolute or relative virtual times.
/// Ties are broken by schedule order, so runs are fully deterministic.
///
/// # Examples
///
/// ```
/// use simcore::{Engine, SimTime};
/// use std::cell::Cell;
/// use std::rc::Rc;
///
/// let mut engine = Engine::new();
/// let fired = Rc::new(Cell::new(false));
/// let f = fired.clone();
/// engine.schedule_in(SimTime::from_millis(5), move |_| f.set(true));
/// engine.run();
/// assert!(fired.get());
/// assert_eq!(engine.now(), SimTime::from_millis(5));
/// ```
pub struct Engine {
    now: SimTime,
    queue: BinaryHeap<Scheduled>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    fired: u64,
}

impl Engine {
    /// Creates an engine with the clock at zero.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            fired: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events fired so far.
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Number of events still pending (including cancelled ones not yet
    /// drained from the queue).
    pub fn pending(&self) -> usize {
        self.queue.len() - self.cancelled.len()
    }

    /// Advances the clock without firing anything.
    ///
    /// Used by sequential cost accounting: an operation that "takes" `dt`
    /// simply pushes the clock forward.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if events scheduled before `now + dt` are
    /// pending, since skipping over them would reorder time.
    pub fn advance(&mut self, dt: SimTime) {
        let target = self.now + dt;
        debug_assert!(
            self.peek_time().map(|t| t >= target).unwrap_or(true),
            "advance() would skip over a pending event"
        );
        self.now = target;
    }

    /// Schedules `f` at absolute time `at` (clamped to now if in the past).
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        f: impl FnOnce(&mut Engine) + 'static,
    ) -> EventId {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled {
            at,
            seq,
            f: Box::new(f),
        });
        EventId(seq)
    }

    /// Schedules `f` after a relative delay.
    pub fn schedule_in(
        &mut self,
        dt: SimTime,
        f: impl FnOnce(&mut Engine) + 'static,
    ) -> EventId {
        self.schedule_at(self.now + dt, f)
    }

    /// Cancels a previously scheduled event. Cancelling an event that has
    /// already fired is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id.0);
    }

    /// Time of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.drain_cancelled();
        self.queue.peek().map(|s| s.at)
    }

    /// Fires the next event, advancing the clock to it. Returns false if
    /// the queue is empty.
    pub fn step(&mut self) -> bool {
        self.drain_cancelled();
        match self.queue.pop() {
            Some(s) => {
                debug_assert!(s.at >= self.now, "event scheduled in the past");
                self.now = s.at;
                self.fired += 1;
                (s.f)(self);
                true
            }
            None => false,
        }
    }

    /// Runs until the queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until the clock would pass `t`; events at exactly `t` fire.
    /// The clock is left at `min(t, last event time)`... more precisely at
    /// `t` if any event beyond `t` remains, so callers can continue from a
    /// known instant.
    pub fn run_until(&mut self, t: SimTime) {
        loop {
            match self.peek_time() {
                Some(at) if at <= t => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.now < t {
            self.now = t;
        }
    }

    fn drain_cancelled(&mut self) {
        while let Some(s) = self.queue.peek() {
            if self.cancelled.remove(&s.seq) {
                self.queue.pop();
            } else {
                break;
            }
        }
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let mut e = Engine::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for (i, ms) in [(0u32, 30u64), (1, 10), (2, 20)] {
            let o = order.clone();
            e.schedule_at(SimTime::from_millis(ms), move |_| o.borrow_mut().push(i));
        }
        e.run();
        assert_eq!(*order.borrow(), vec![1, 2, 0]);
        assert_eq!(e.now(), SimTime::from_millis(30));
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut e = Engine::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..5u32 {
            let o = order.clone();
            e.schedule_at(SimTime::from_millis(1), move |_| o.borrow_mut().push(i));
        }
        e.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut e = Engine::new();
        let hits = Rc::new(RefCell::new(Vec::new()));
        let h = hits.clone();
        e.schedule_in(SimTime::from_millis(1), move |eng| {
            let h2 = h.clone();
            eng.schedule_in(SimTime::from_millis(2), move |eng| {
                h2.borrow_mut().push(eng.now());
            });
        });
        e.run();
        assert_eq!(*hits.borrow(), vec![SimTime::from_millis(3)]);
    }

    #[test]
    fn cancellation_prevents_firing() {
        let mut e = Engine::new();
        let fired = Rc::new(RefCell::new(false));
        let f = fired.clone();
        let id = e.schedule_in(SimTime::from_millis(1), move |_| *f.borrow_mut() = true);
        e.cancel(id);
        e.run();
        assert!(!*fired.borrow());
        assert_eq!(e.pending(), 0);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut e = Engine::new();
        let count = Rc::new(RefCell::new(0));
        for ms in [5u64, 10, 15] {
            let c = count.clone();
            e.schedule_at(SimTime::from_millis(ms), move |_| *c.borrow_mut() += 1);
        }
        e.run_until(SimTime::from_millis(10));
        assert_eq!(*count.borrow(), 2);
        assert_eq!(e.now(), SimTime::from_millis(10));
        e.run();
        assert_eq!(*count.borrow(), 3);
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut e = Engine::new();
        e.advance(SimTime::from_millis(10));
        let t = Rc::new(RefCell::new(SimTime::ZERO));
        let tc = t.clone();
        e.schedule_at(SimTime::from_millis(1), move |eng| {
            *tc.borrow_mut() = eng.now();
        });
        e.run();
        assert_eq!(*t.borrow(), SimTime::from_millis(10));
    }
}
